//! Deterministic parallel execution of simulation grids.
//!
//! [`SweepRunner`] fans an ordered task list across scoped worker
//! threads and merges the results back **in task order**, so the output
//! of a parallel run is byte-identical to a serial run: parallelism
//! only changes *when* each task executes, never *what* it produces or
//! where its result lands. Every simulation task is itself a pure
//! function of `(trace, config, kind)` — the engine holds no global
//! state — which is what makes this safe.
//!
//! [`run_observed`](SweepRunner::run_observed) is the same engine with
//! a [`PipelineObserver`] attached: each worker labels its trace track,
//! wraps every task in a span, and reports [`WorkerStats`] (tasks
//! claimed, busy vs queue-wait time) on exit — the raw material for
//! `pcap profile`'s imbalance and slowest-cell attribution. The plain
//! [`run`](SweepRunner::run) delegates to it with the compile-out
//! [`NullPipeline`], so the un-profiled path pays nothing.
//!
//! A panic inside a task does not wedge the pool: the panicking worker
//! stores the payload, every worker drains out via an abort flag, and
//! the panic resumes on the caller *after* all workers joined — no
//! partially-initialised result slot is ever read.
//!
//! [`SeedStat`] aggregates per-seed metrics (mean/min/max) for the
//! multi-seed sweep experiment built on top of the runner.

use pcap_obs::{NullPipeline, PipelineObserver, WorkerStats};
use serde::{Deserialize, Serialize};
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One pre-sized result slot, written lock-free by exactly one worker.
///
/// The atomic cursor hands each task index to exactly one worker, so
/// at most one thread ever writes a given slot, and the scope join
/// orders all writes before the merge's reads — slots need no lock.
struct Slot<R>(UnsafeCell<Option<R>>);

// SAFETY: a `Slot` is shared across the scoped workers, but the
// `fetch_add` cursor gives each task index — hence each slot — to
// exactly one worker, so there are no concurrent accesses to the
// inner value; the merge reads only after `thread::scope` joins every
// worker. `R: Send` is required to move the value across threads.
#[allow(unsafe_code)]
unsafe impl<R: Send> Sync for Slot<R> {}

/// A pool of scoped worker threads that evaluates an ordered task list
/// and returns results in canonical (task) order.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with `jobs` workers; `0` selects the machine's
    /// available parallelism.
    pub fn new(jobs: usize) -> SweepRunner {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            jobs
        };
        SweepRunner { jobs }
    }

    /// The number of worker threads this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `worker` over every task and returns the results in task
    /// order, regardless of which worker finished first.
    ///
    /// Workers pull tasks from a shared atomic cursor (dynamic load
    /// balancing: simulation costs vary wildly across apps) and write
    /// each result into the pre-sized, lock-free slot of its task
    /// index, so the merge is a canonical-order readout with no
    /// per-task lock.
    ///
    /// # Panics
    ///
    /// If `worker` panics on any task, the panic is propagated on the
    /// calling thread after every worker has drained and joined.
    pub fn run<T, R, F>(&self, tasks: &[T], worker: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_observed(
            "sweep",
            tasks,
            worker,
            |index, _| index.to_string(),
            &NullPipeline,
        )
    }

    /// [`run`](Self::run) with a [`PipelineObserver`] attached.
    ///
    /// `scope_name` names the runner scope in worker telemetry and
    /// thread labels; `label` names each task's span (called only when
    /// the observer is enabled, so it may allocate freely). With
    /// [`NullPipeline`] every instrumentation site — including the
    /// label construction and the two `Instant` reads per task —
    /// compiles out, and the behaviour is exactly [`run`](Self::run).
    pub fn run_observed<T, R, F, L, O>(
        &self,
        scope_name: &str,
        tasks: &[T],
        worker: F,
        label: L,
        observer: &O,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        L: Fn(usize, &T) -> String + Sync,
        O: PipelineObserver,
    {
        if self.jobs <= 1 || tasks.len() <= 1 {
            return self.run_serial(scope_name, tasks, &worker, &label, observer);
        }
        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let slots: Vec<Slot<R>> = tasks.iter().map(|_| Slot(UnsafeCell::new(None))).collect();
        std::thread::scope(|scope| {
            for worker_index in 0..self.jobs.min(tasks.len()) {
                let (cursor, abort, panic_slot) = (&cursor, &abort, &panic_slot);
                let (slots, worker, label) = (&slots, &worker, &label);
                scope.spawn(move || {
                    let started = Instant::now();
                    if O::ENABLED {
                        observer.thread_label(&format!("{scope_name} worker {worker_index}"));
                    }
                    let mut tasks_done = 0u64;
                    let mut busy_us = 0u64;
                    while !abort.load(Ordering::Relaxed) {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(index) else {
                            break;
                        };
                        let result = if O::ENABLED {
                            let name = label(index, task);
                            let task_start = Instant::now();
                            observer.span_begin(&name);
                            let result = catch_unwind(AssertUnwindSafe(|| worker(index, task)));
                            observer.span_end(&name);
                            let micros = task_start.elapsed().as_micros() as u64;
                            busy_us += micros;
                            if result.is_ok() {
                                tasks_done += 1;
                                observer.task_done(&name, micros);
                            }
                            result
                        } else {
                            catch_unwind(AssertUnwindSafe(|| worker(index, task)))
                        };
                        match result {
                            Ok(result) => {
                                // SAFETY: `fetch_add` yielded `index` to this
                                // worker alone, so no other thread touches
                                // `slots[index]`; the merge below reads only
                                // after the scope joins.
                                #[allow(unsafe_code)]
                                unsafe {
                                    *slots[index].0.get() = Some(result);
                                }
                            }
                            Err(payload) => {
                                // First panic wins; park the payload, tell
                                // every worker to drain, and keep the slot
                                // empty — the caller resumes the panic
                                // before the merge could read it.
                                let mut slot = panic_slot.lock().unwrap_or_else(|e| e.into_inner());
                                slot.get_or_insert(payload);
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    if O::ENABLED {
                        observer.worker_done(WorkerStats {
                            scope: scope_name.to_owned(),
                            worker: worker_index,
                            tasks: tasks_done,
                            busy_us,
                            elapsed_us: started.elapsed().as_micros() as u64,
                        });
                    }
                });
            }
        });
        if let Some(payload) = panic_slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.0
                    .into_inner()
                    .expect("every task index was claimed exactly once")
            })
            .collect()
    }

    /// The single-threaded path, instrumented identically (worker 0 on
    /// the calling thread) so `--jobs 1` profiles still carry spans and
    /// telemetry.
    fn run_serial<T, R, F, L, O>(
        &self,
        scope_name: &str,
        tasks: &[T],
        worker: &F,
        label: &L,
        observer: &O,
    ) -> Vec<R>
    where
        F: Fn(usize, &T) -> R,
        L: Fn(usize, &T) -> String,
        O: PipelineObserver,
    {
        if !O::ENABLED {
            return tasks
                .iter()
                .enumerate()
                .map(|(index, task)| worker(index, task))
                .collect();
        }
        let started = Instant::now();
        observer.thread_label(&format!("{scope_name} worker 0"));
        let mut busy_us = 0u64;
        let results = tasks
            .iter()
            .enumerate()
            .map(|(index, task)| {
                let name = label(index, task);
                let task_start = Instant::now();
                observer.span_begin(&name);
                let result = worker(index, task);
                observer.span_end(&name);
                let micros = task_start.elapsed().as_micros() as u64;
                busy_us += micros;
                observer.task_done(&name, micros);
                result
            })
            .collect();
        observer.worker_done(WorkerStats {
            scope: scope_name.to_owned(),
            worker: 0,
            tasks: tasks.len() as u64,
            busy_us,
            elapsed_us: started.elapsed().as_micros() as u64,
        });
        results
    }
}

impl Default for SweepRunner {
    /// The default runner uses all available parallelism.
    fn default() -> SweepRunner {
        SweepRunner::new(0)
    }
}

/// Mean/min/max of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedStat {
    /// Arithmetic mean over the seeds.
    pub mean: f64,
    /// Smallest per-seed value.
    pub min: f64,
    /// Largest per-seed value.
    pub max: f64,
}

impl SeedStat {
    /// Aggregates samples; an empty slice yields all zeros.
    ///
    /// NaN samples follow IEEE `min`/`max` semantics — they are ignored
    /// by `min` and `max` (which keep the non-NaN operand) but poison
    /// `mean` through the sum. An all-NaN slice therefore yields
    /// `min = +∞`, `max = −∞`, `mean = NaN` — the same sentinel bounds
    /// as the (unreachable) no-sample fold. `tests` pin this.
    pub fn of(samples: &[f64]) -> SeedStat {
        if samples.is_empty() {
            return SeedStat {
                mean: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
            sum += x;
        }
        SeedStat {
            mean: sum / samples.len() as f64,
            min,
            max,
        }
    }

    /// The max−min spread across seeds; `0.0` for empty and
    /// single-sample inputs.
    pub fn spread(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_obs::TraceRecorder;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<u64> = (0..64).collect();
        // Deliberately uneven task costs so workers finish out of order.
        let work = |_: usize, n: &u64| -> u64 {
            let spin = (n % 7) * 1_000;
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            n * 3
        };
        let serial = SweepRunner::new(1).run(&tasks, work);
        let parallel = SweepRunner::new(8).run(&tasks, work);
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..64).map(|n| n * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<usize> = (0..100).collect();
        let results = SweepRunner::new(4).run(&tasks, |index, task| {
            counter.fetch_add(1, Ordering::Relaxed);
            assert_eq!(index, *task);
            index
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn zero_jobs_selects_available_parallelism() {
        assert!(SweepRunner::new(0).jobs() >= 1);
        assert_eq!(SweepRunner::new(3).jobs(), 3);
    }

    #[test]
    fn observed_run_matches_plain_run_and_reports_telemetry() {
        let tasks: Vec<u64> = (0..40).collect();
        let recorder = TraceRecorder::new();
        let observed = SweepRunner::new(4).run_observed(
            "grid",
            &tasks,
            |_, n| n * 2,
            |_, n| format!("cell:{n}"),
            &recorder,
        );
        assert_eq!(observed, SweepRunner::new(4).run(&tasks, |_, n| n * 2));
        let workers = recorder.workers();
        assert_eq!(workers.len(), 4);
        assert!(workers.iter().all(|w| w.scope == "grid"));
        assert_eq!(workers.iter().map(|w| w.tasks).sum::<u64>(), 40);
        assert_eq!(recorder.counters()["tasks"], 40);
        // One span per task, each on its worker's own track.
        let events = recorder.events();
        assert_eq!(events.iter().filter(|e| e.begin).count(), 40);
        assert!(recorder.slowest().unwrap().label.starts_with("cell:"));
    }

    #[test]
    fn serial_observed_run_still_traces_as_worker_zero() {
        let tasks: Vec<u64> = (0..5).collect();
        let recorder = TraceRecorder::new();
        SweepRunner::new(1).run_observed(
            "solo",
            &tasks,
            |_, n| *n,
            |i, _| format!("t:{i}"),
            &recorder,
        );
        let workers = recorder.workers();
        assert_eq!(workers.len(), 1);
        assert_eq!(workers[0].worker, 0);
        assert_eq!(workers[0].tasks, 5);
        assert_eq!(recorder.tracks().values().next().unwrap(), "solo worker 0");
    }

    /// Satellite: a panicking task must neither deadlock the pool nor
    /// let the merge read a partially-initialised slot — the panic
    /// propagates on the caller after every worker joined.
    #[test]
    #[should_panic(expected = "task 17 exploded")]
    fn parallel_worker_panic_propagates_without_deadlock() {
        let tasks: Vec<usize> = (0..100).collect();
        SweepRunner::new(4).run(&tasks, |index, _| {
            if index == 17 {
                panic!("task 17 exploded");
            }
            index
        });
    }

    #[test]
    fn worker_panic_aborts_remaining_tasks_and_keeps_payload() {
        let started = AtomicUsize::new(0);
        let tasks: Vec<usize> = (0..10_000).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            SweepRunner::new(2).run(&tasks, |index, _| {
                started.fetch_add(1, Ordering::Relaxed);
                if index == 3 {
                    panic!("boom at 3");
                }
                // Keep tasks slow enough that the abort flag matters.
                std::thread::sleep(std::time::Duration::from_micros(50));
                index
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("payload survives verbatim");
        assert_eq!(message, "boom at 3");
        let ran = started.load(Ordering::Relaxed);
        assert!(
            ran < tasks.len(),
            "abort flag should stop the sweep early (ran {ran} of {})",
            tasks.len()
        );
    }

    #[test]
    #[should_panic(expected = "serial boom")]
    fn serial_worker_panic_propagates() {
        let tasks: Vec<usize> = (0..4).collect();
        SweepRunner::new(1).run(&tasks, |index, _| {
            if index == 2 {
                panic!("serial boom");
            }
            index
        });
    }

    #[test]
    fn seed_stat_aggregates() {
        let s = SeedStat::of(&[0.2, 0.4, 0.3]);
        assert!((s.mean - 0.3).abs() < 1e-12);
        assert_eq!(s.min, 0.2);
        assert_eq!(s.max, 0.4);
        assert!((s.spread() - 0.2).abs() < 1e-12);
        assert_eq!(SeedStat::of(&[]).mean, 0.0);
    }

    /// Satellite: documented edge-case behaviour of `SeedStat::of` and
    /// `SeedStat::spread`, pinned.
    #[test]
    fn seed_stat_empty_input_is_all_zeros() {
        let s = SeedStat::of(&[]);
        assert_eq!((s.mean, s.min, s.max), (0.0, 0.0, 0.0));
        assert_eq!(s.spread(), 0.0);
    }

    #[test]
    fn seed_stat_single_sample_collapses() {
        let s = SeedStat::of(&[0.37]);
        assert_eq!((s.mean, s.min, s.max), (0.37, 0.37, 0.37));
        assert_eq!(s.spread(), 0.0, "one seed has no spread");
        // Negative single sample, same collapse.
        let n = SeedStat::of(&[-2.5]);
        assert_eq!((n.mean, n.min, n.max), (-2.5, -2.5, -2.5));
        assert_eq!(n.spread(), 0.0);
    }

    #[test]
    fn seed_stat_nan_samples_skip_extremes_but_poison_mean() {
        // IEEE min/max keep the non-NaN operand, so extremes come from
        // the finite samples; the mean runs through the NaN sum.
        let s = SeedStat::of(&[0.1, f64::NAN, 0.5]);
        assert_eq!(s.min, 0.1);
        assert_eq!(s.max, 0.5);
        assert!(s.mean.is_nan());
        assert!((s.spread() - 0.4).abs() < 1e-12, "spread stays finite");
    }

    #[test]
    fn seed_stat_all_nan_keeps_sentinel_bounds() {
        let s = SeedStat::of(&[f64::NAN, f64::NAN]);
        assert_eq!(s.min, f64::INFINITY, "min fold never left its seed");
        assert_eq!(s.max, f64::NEG_INFINITY, "max fold never left its seed");
        assert!(s.mean.is_nan());
        assert_eq!(s.spread(), f64::NEG_INFINITY, "−∞ − ∞");
    }
}
