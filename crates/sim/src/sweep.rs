//! Deterministic parallel execution of simulation grids.
//!
//! [`SweepRunner`] fans an ordered task list across scoped worker
//! threads and merges the results back **in task order**, so the output
//! of a parallel run is byte-identical to a serial run: parallelism
//! only changes *when* each task executes, never *what* it produces or
//! where its result lands. Every simulation task is itself a pure
//! function of `(trace, config, kind)` — the engine holds no global
//! state — which is what makes this safe.
//!
//! [`SeedStat`] aggregates per-seed metrics (mean/min/max) for the
//! multi-seed sweep experiment built on top of the runner.

use serde::{Deserialize, Serialize};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One pre-sized result slot, written lock-free by exactly one worker.
///
/// The atomic cursor hands each task index to exactly one worker, so
/// at most one thread ever writes a given slot, and the scope join
/// orders all writes before the merge's reads — slots need no lock.
struct Slot<R>(UnsafeCell<Option<R>>);

// SAFETY: a `Slot` is shared across the scoped workers, but the
// `fetch_add` cursor gives each task index — hence each slot — to
// exactly one worker, so there are no concurrent accesses to the
// inner value; the merge reads only after `thread::scope` joins every
// worker. `R: Send` is required to move the value across threads.
#[allow(unsafe_code)]
unsafe impl<R: Send> Sync for Slot<R> {}

/// A pool of scoped worker threads that evaluates an ordered task list
/// and returns results in canonical (task) order.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with `jobs` workers; `0` selects the machine's
    /// available parallelism.
    pub fn new(jobs: usize) -> SweepRunner {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            jobs
        };
        SweepRunner { jobs }
    }

    /// The number of worker threads this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `worker` over every task and returns the results in task
    /// order, regardless of which worker finished first.
    ///
    /// Workers pull tasks from a shared atomic cursor (dynamic load
    /// balancing: simulation costs vary wildly across apps) and write
    /// each result into the pre-sized, lock-free slot of its task
    /// index, so the merge is a canonical-order readout with no
    /// per-task lock.
    pub fn run<T, R, F>(&self, tasks: &[T], worker: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.jobs <= 1 || tasks.len() <= 1 {
            return tasks
                .iter()
                .enumerate()
                .map(|(index, task)| worker(index, task))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Slot<R>> = tasks.iter().map(|_| Slot(UnsafeCell::new(None))).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(tasks.len()) {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(index) else {
                        break;
                    };
                    let result = worker(index, task);
                    // SAFETY: `fetch_add` yielded `index` to this worker
                    // alone, so no other thread touches `slots[index]`;
                    // the merge below reads only after the scope joins.
                    #[allow(unsafe_code)]
                    unsafe {
                        *slots[index].0.get() = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.0
                    .into_inner()
                    .expect("every task index was claimed exactly once")
            })
            .collect()
    }
}

impl Default for SweepRunner {
    /// The default runner uses all available parallelism.
    fn default() -> SweepRunner {
        SweepRunner::new(0)
    }
}

/// Mean/min/max of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedStat {
    /// Arithmetic mean over the seeds.
    pub mean: f64,
    /// Smallest per-seed value.
    pub min: f64,
    /// Largest per-seed value.
    pub max: f64,
}

impl SeedStat {
    /// Aggregates samples; an empty slice yields all zeros.
    pub fn of(samples: &[f64]) -> SeedStat {
        if samples.is_empty() {
            return SeedStat {
                mean: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
            sum += x;
        }
        SeedStat {
            mean: sum / samples.len() as f64,
            min,
            max,
        }
    }

    /// The max−min spread across seeds.
    pub fn spread(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<u64> = (0..64).collect();
        // Deliberately uneven task costs so workers finish out of order.
        let work = |_: usize, n: &u64| -> u64 {
            let spin = (n % 7) * 1_000;
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            n * 3
        };
        let serial = SweepRunner::new(1).run(&tasks, work);
        let parallel = SweepRunner::new(8).run(&tasks, work);
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..64).map(|n| n * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<usize> = (0..100).collect();
        let results = SweepRunner::new(4).run(&tasks, |index, task| {
            counter.fetch_add(1, Ordering::Relaxed);
            assert_eq!(index, *task);
            index
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn zero_jobs_selects_available_parallelism() {
        assert!(SweepRunner::new(0).jobs() >= 1);
        assert_eq!(SweepRunner::new(3).jobs(), 3);
    }

    #[test]
    fn seed_stat_aggregates() {
        let s = SeedStat::of(&[0.2, 0.4, 0.3]);
        assert!((s.mean - 0.3).abs() < 1e-12);
        assert_eq!(s.min, 0.2);
        assert_eq!(s.max, 0.4);
        assert!((s.spread() - 0.2).abs() < 1e-12);
        assert_eq!(SeedStat::of(&[]).mean, 0.0);
    }
}
