//! Trace-driven multi-process disk power-management simulator — the
//! evaluation engine behind every figure of the PCAP paper
//! reproduction.
//!
//! The pipeline mirrors §6 of the paper: application traces are
//! filtered through the Linux-like file cache
//! ([`pcap-cache`](https://docs.rs/pcap-cache)); the surviving disk
//! accesses drive per-process predictors whose standing votes are
//! combined by the Global Shutdown Predictor; shutdown decisions are
//! scored against the breakeven time and energy is integrated per the
//! Table 2 disk model.
//!
//! # Example
//!
//! ```
//! use pcap_sim::{evaluate_app, PowerManagerKind, SimConfig};
//! use pcap_workload::{AppModel, PaperApp};
//!
//! let trace = PaperApp::Nedit.spec().generate_trace(1)?;
//! let config = SimConfig::paper();
//! let pcap = evaluate_app(&trace, &config, PowerManagerKind::PCAP);
//! let tp = evaluate_app(&trace, &config, PowerManagerKind::Timeout);
//! // nedit's single long idle period per execution is what PCAP learns
//! // to cover without waiting out the 10-second timer.
//! assert!(pcap.savings() >= tp.savings());
//! # Ok::<(), pcap_trace::TraceError>(())
//! ```

// `deny` rather than `forbid`: the sweep runner's lock-free result
// slots carry one reviewed `#[allow(unsafe_code)]` (see `sweep.rs`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod engine;
pub mod factory;
pub mod journal;
pub mod metrics;
pub mod multistate;
pub mod prepared;
pub mod profile;
pub mod stream;
pub mod streams;
pub mod sweep;

pub use audit::{
    audit_prepared, evaluate_prepared_instrumented, evaluate_prepared_observed, records_to_jsonl,
    AuditCollector, AuditEnergy, AuditOutcome, DecisionObserver, DecisionRecord, GapEnergy,
    LogHistogram, MetricsObserver, MetricsRegistry, NullObserver,
};
pub use engine::{
    evaluate_app, simulate_run, simulate_run_logged, simulate_run_observed, simulate_run_reusing,
    AppReport, EngineScratch, GapRecord, GapVerdict, RunOutcome,
};
pub use factory::{Manager, PowerManagerKind};
pub use journal::{
    atomic_write, decode_reports, encode_reports, fleet_journal_config, run_journaled,
    sweep_fleet_journaled, Journal, JournalError,
};
pub use metrics::{EnergyBreakdown, PredictionCounts};
pub use multistate::{
    audit_prepared_multistate, evaluate_prepared_multistate, evaluate_prepared_multistate_observed,
    evaluate_prepared_multistate_traced, simulate_run_multistate, LadderStats, MultiStateOutcome,
    MultiStateScratch,
};
pub use prepared::{evaluate_prepared, evaluate_prepared_traced, PreparedTrace};
pub use profile::WorkloadProfile;
pub use stream::{
    stream_device_report, sweep_fleet, sweep_fleet_observed, DeviceOutcome, FleetReport, FleetSlot,
    ShardEvaluator, StreamWorker, FLEET_CHUNK,
};
pub use streams::{prepare_call_count, Lifetime, RunStreams};
pub use sweep::{SeedStat, SweepRunner};

use pcap_cache::CacheConfig;
use pcap_disk::DiskParams;
use pcap_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Simulation configuration: the disk, the cache, and the predictor
/// parameters shared across managers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Disk power model (Table 2).
    pub disk: DiskParams,
    /// File-cache model (§6).
    pub cache: CacheConfig,
    /// Sliding wait-window before dynamic predictions act (§4.1.1; 1 s).
    pub wait_window: SimDuration,
    /// Backup timeout covering training periods (§4.3; 10 s).
    pub backup_timeout: SimDuration,
    /// Timeout of the plain TP predictor (§6.1; 10 s).
    pub timeout: SimDuration,
    /// PCAPh idle-period history length (§6.4.1; 6).
    pub pcap_history_len: usize,
    /// Learning-Tree history length (§6.1; 8).
    pub lt_history_len: usize,
    /// Optional LRU capacity for PCAP prediction tables (§6.4.2: "some
    /// storage limit can be imposed and an LRU replacement of old
    /// signatures can be used"). `None` = unbounded, the paper default.
    pub pcap_table_capacity: Option<usize>,
    /// Path-encoding scheme for PCAP signatures (the paper's additive
    /// encoding by default).
    pub signature_scheme: pcap_core::SignatureScheme,
}

impl SimConfig {
    /// The paper's configuration.
    pub fn paper() -> SimConfig {
        SimConfig {
            disk: DiskParams::fujitsu_mhf2043at(),
            cache: CacheConfig::paper(),
            wait_window: SimDuration::from_secs(1),
            backup_timeout: SimDuration::from_secs(10),
            timeout: SimDuration::from_secs(10),
            pcap_history_len: 6,
            lt_history_len: 8,
            pcap_table_capacity: None,
            signature_scheme: pcap_core::SignatureScheme::Additive,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper()
    }
}
