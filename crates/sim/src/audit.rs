//! Decision-audit observability: a per-shutdown-decision event stream
//! and a lightweight metrics registry (DESIGN.md §8).
//!
//! The engine computes, for every merged idle gap, exactly the evidence
//! the paper's §6 analysis argues from — which PC path triggered the
//! decision, what the table knew, what was predicted, what actually
//! happened and what it cost — and until now threw it away after
//! updating the aggregate counters. This module threads a generic
//! [`DecisionObserver`] through the simulation loop so that evidence
//! can be captured without changing a single aggregate byte:
//!
//! * [`NullObserver`] (the default everywhere) sets
//!   [`ENABLED`](DecisionObserver::ENABLED) to `false`; the engine
//!   guards all record construction on that associated constant, so
//!   monomorphization deletes the audit code entirely from the hot
//!   path. `pcap bench` asserts the null sink costs nothing measurable.
//! * [`AuditCollector`] records every decision as a [`DecisionRecord`],
//!   feeds a [`MetricsRegistry`] (counters plus log-scaled gap/latency
//!   histograms), and *replays* the engine's energy accounting so its
//!   totals are bitwise-equal to the aggregate report — the
//!   reconciliation property `tests/properties.rs` enforces.
//!
//! Everything here is a pure function of `(trace, config, manager
//! kind)`: the simulation is single-threaded per app, so audit output
//! is byte-identical for any `--jobs` value and can be
//! golden-snapshotted (see `pcap audit --jsonl` and `golden/audit/`).

use crate::engine::{simulate_run_observed, AppReport, EngineScratch, GapVerdict};
use crate::factory::PowerManagerKind;
use crate::metrics::{EnergyBreakdown, PredictionCounts};
use crate::prepared::PreparedTrace;
use crate::SimConfig;
use pcap_core::VoteSource;
use pcap_disk::{GapBreakdown, Joules};
use pcap_types::{Pc, Pid, Signature, SimDuration, SimTime};
use serde::Serialize;
use std::sync::Arc;

/// Everything the engine knew and decided about one idle gap — one
/// line of the `pcap audit --jsonl` decision log.
///
/// Field order is the JSONL column order; all times are integer
/// microseconds, enums serialize as bare strings (`"Hit"`,
/// `"Primary"`), and absent context is `null`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DecisionRecord {
    /// Zero-based execution (run) index within the application trace.
    pub run: u32,
    /// Zero-based index of the access that opened the gap, within the
    /// run's cache-filtered access stream.
    pub access: u32,
    /// When the gap started (the access's service completion).
    pub at: SimTime,
    /// Process whose access opened the gap (as traced; kernel
    /// write-backs keep the dirtying process's pid).
    pub pid: Pid,
    /// Program counter that triggered the access ([`Pc`]`(0)` marks
    /// kernel write-backs).
    pub pc: Pc,
    /// The deciding predictor's current PC-path signature, for
    /// signature-based predictors that have observed at least one I/O.
    pub signature: Option<Signature>,
    /// Prediction-table entry count visible to the deciding predictor
    /// at decision time (`None` for table-less baselines).
    pub table_len: Option<usize>,
    /// The per-process shutdown vote standing after this access:
    /// shut down this long after completion (`None` = keep spinning).
    pub vote_delay: Option<SimDuration>,
    /// Who produced the vote (`None` when no predictor was attached,
    /// e.g. the oracle manager).
    pub vote_source: Option<VoteSource>,
    /// The process-local idle gap following this access.
    pub local_gap: SimDuration,
    /// Verdict of the local (per-process, Figure 6) classification.
    pub local_verdict: GapVerdict,
    /// The merged (global) idle gap following this access.
    pub global_gap: SimDuration,
    /// When the disk actually shut down inside the gap, if it did.
    pub shutdown_at: Option<SimTime>,
    /// Which vote source the shutdown is attributed to.
    pub shutdown_source: Option<VoteSource>,
    /// Verdict of the global (Figures 7–10) classification.
    pub verdict: GapVerdict,
    /// Energy effect of power management on this gap, in joules:
    /// managed gap energy minus the always-on energy for the same gap
    /// (busy energy excluded — it is identical in both). Negative
    /// means the decision saved energy; exactly `0.0` when the disk
    /// kept spinning.
    pub energy_delta_j: f64,
}

impl DecisionRecord {
    /// The energy effect as a typed quantity (see
    /// [`energy_delta_j`](Self::energy_delta_j)).
    pub fn energy_delta(&self) -> Joules {
        Joules(self.energy_delta_j)
    }

    /// Shutdown latency from gap start, if the disk shut down.
    pub fn shutdown_latency(&self) -> Option<SimDuration> {
        self.shutdown_at.map(|at| at.saturating_since(self.at))
    }
}

/// The exact energy quantities the engine accounted for one decision,
/// passed alongside each [`DecisionRecord`] so sinks can replay the
/// aggregate accounting bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapEnergy {
    /// Whether the gap exceeded the breakeven time (the bucket selector
    /// the engine passes to [`EnergyBreakdown::add_gap`]).
    pub long: bool,
    /// Busy (service) energy of the access that opened the gap.
    pub busy: Joules,
    /// The managed gap breakdown the engine added to the report.
    pub managed: GapBreakdown,
    /// The always-on breakdown for the same gap (the base-energy term).
    pub base: GapBreakdown,
}

/// A sink for per-decision audit events.
///
/// The engine is generic over the observer and guards every record
/// construction on [`ENABLED`](Self::ENABLED); with the default
/// [`NullObserver`] the whole audit path is dead code after
/// monomorphization, so observability costs nothing when unused.
///
/// Contract: [`on_run_start`](Self::on_run_start) is called once per
/// execution in run order before any of its decisions;
/// [`on_decision`](Self::on_decision) is called once per cache-filtered
/// access, in access order, after the engine finished accounting the
/// gap that follows it.
pub trait DecisionObserver {
    /// Whether the engine should construct and deliver records at all.
    /// Sinks that consume events leave this `true`; [`NullObserver`]
    /// overrides it to `false`.
    const ENABLED: bool = true;

    /// A new execution begins; `run` is its zero-based index.
    fn on_run_start(&mut self, run: u32) {
        let _ = run;
    }

    /// One idle-gap decision was fully accounted.
    fn on_decision(&mut self, record: DecisionRecord, energy: &GapEnergy);

    /// Multi-state extension: the ladder state the just-accounted gap's
    /// descent bottomed out in (`None` = the disk never left spinning
    /// idle). Called immediately after
    /// [`on_decision`](Self::on_decision) for the same access — but
    /// only by the multi-state engine
    /// (`crate::simulate_run_multistate`); the two-state engine never
    /// invokes it, so legacy audit streams are unaffected.
    fn on_ladder_bottom(&mut self, bottom: Option<usize>) {
        let _ = bottom;
    }
}

/// The do-nothing sink: disables the audit path at compile time.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl DecisionObserver for NullObserver {
    const ENABLED: bool = false;

    fn on_decision(&mut self, _record: DecisionRecord, _energy: &GapEnergy) {}
}

// The log₂ histogram moved down into `pcap-obs` (the pipeline tracing
// registry shares it); re-exported here so audit consumers keep their
// import path. Its unit tests moved with it.
pub use pcap_obs::LogHistogram;

/// Aggregate audit metrics: decision counters, the summed per-decision
/// energy delta, and log-scaled gap/latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsRegistry {
    /// Decisions observed (one per cache-filtered access).
    pub decisions: u64,
    /// Gaps longer than breakeven (shutdown opportunities).
    pub opportunities: u64,
    /// Shutdowns whose off interval exceeded breakeven.
    pub hits: u64,
    /// Shutdowns that lost energy.
    pub misses: u64,
    /// Opportunities with no shutdown.
    pub not_predicted: u64,
    /// Gaps too short to matter, with no shutdown.
    pub short: u64,
    /// Shutdowns attributed to a primary predictor.
    pub shutdowns_primary: u64,
    /// Shutdowns attributed to the backup timeout.
    pub shutdowns_backup: u64,
    /// Sum of per-decision energy deltas (joules; negative = saved).
    pub energy_delta_j: f64,
    /// Distribution of merged idle-gap lengths.
    pub gap_histogram: LogHistogram,
    /// Distribution of shutdown latencies (gap start → spin-down).
    pub latency_histogram: LogHistogram,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Folds one decision into the counters and histograms.
    pub fn observe(&mut self, record: &DecisionRecord) {
        self.decisions += 1;
        self.gap_histogram.record(record.global_gap.as_micros());
        self.energy_delta_j += record.energy_delta_j;
        match record.verdict {
            GapVerdict::Hit => self.hits += 1,
            GapVerdict::Miss => self.misses += 1,
            GapVerdict::NotPredicted => self.not_predicted += 1,
            GapVerdict::Short => self.short += 1,
        }
        if record.verdict == GapVerdict::Hit || record.verdict == GapVerdict::Miss {
            match record.shutdown_source {
                Some(VoteSource::Primary) => self.shutdowns_primary += 1,
                Some(VoteSource::Backup) => self.shutdowns_backup += 1,
                None => {}
            }
        }
        if let Some(latency) = record.shutdown_latency() {
            self.latency_histogram.record(latency.as_micros());
        }
    }

    /// Folds opportunity accounting (kept separate from
    /// [`observe`](Self::observe) because opportunity is a property of
    /// the gap, not the verdict: a sub-breakeven gap can still end in a
    /// `Miss`).
    pub fn observe_opportunity(&mut self, long: bool) {
        if long {
            self.opportunities += 1;
        }
    }

    /// Shutdowns issued (hits + misses).
    pub fn shutdowns(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A [`DecisionObserver`] that only maintains a [`MetricsRegistry`] —
/// the cheapest attached sink, used by the bench guard as the
/// "observer-on" arm.
#[derive(Debug, Clone, Default)]
pub struct MetricsObserver {
    /// The registry being populated.
    pub metrics: MetricsRegistry,
}

impl DecisionObserver for MetricsObserver {
    fn on_decision(&mut self, record: DecisionRecord, energy: &GapEnergy) {
        self.metrics.observe_opportunity(energy.long);
        self.metrics.observe(&record);
    }
}

/// The full-capture sink behind `pcap audit`: keeps every
/// [`DecisionRecord`], maintains the [`MetricsRegistry`], and replays
/// the engine's energy accounting into run-structured totals so they
/// reconcile bitwise with the aggregate [`AppReport`].
#[derive(Debug, Clone, Default)]
pub struct AuditCollector {
    records: Vec<DecisionRecord>,
    metrics: MetricsRegistry,
    /// Per-decision ladder bottom-out states, aligned with `records`.
    /// Populated only by the multi-state engine; empty otherwise.
    ladder_bottoms: Vec<Option<usize>>,
    current_run: u32,
    /// Run-local accumulators, flushed into the totals at run
    /// boundaries: the aggregate path sums per-run outcomes
    /// (`report.energy += outcome.energy`), and floating-point addition
    /// is only bitwise-reproducible if the association order matches.
    run_energy: EnergyBreakdown,
    run_base: EnergyBreakdown,
    energy: EnergyBreakdown,
    base_energy: EnergyBreakdown,
}

impl AuditCollector {
    /// An empty collector.
    pub fn new() -> AuditCollector {
        AuditCollector::default()
    }

    fn flush_run(&mut self) {
        self.energy += self.run_energy;
        self.base_energy += self.run_base;
        self.run_energy = EnergyBreakdown::default();
        self.run_base = EnergyBreakdown::default();
    }

    /// Finalizes the collector into its outputs (records, metrics,
    /// ladder bottom-outs, replayed energy totals).
    #[allow(clippy::type_complexity)]
    pub fn finish(
        mut self,
    ) -> (
        Vec<DecisionRecord>,
        MetricsRegistry,
        Vec<Option<usize>>,
        AuditEnergy,
    ) {
        self.flush_run();
        (
            self.records,
            self.metrics,
            self.ladder_bottoms,
            AuditEnergy {
                energy: self.energy,
                base_energy: self.base_energy,
            },
        )
    }
}

impl DecisionObserver for AuditCollector {
    fn on_run_start(&mut self, run: u32) {
        if run > 0 {
            self.flush_run();
        }
        self.current_run = run;
    }

    fn on_decision(&mut self, mut record: DecisionRecord, energy: &GapEnergy) {
        record.run = self.current_run;
        self.metrics.observe_opportunity(energy.long);
        self.metrics.observe(&record);
        // Replay the engine's exact accounting sequence for this access:
        // busy first, then the gap (same AddAssign order as the engine's
        // run-local accumulation).
        self.run_energy.busy += energy.busy;
        self.run_energy.add_gap(energy.long, energy.managed);
        self.run_base.busy += energy.busy;
        self.run_base.add_gap(energy.long, energy.base);
        self.records.push(record);
    }

    fn on_ladder_bottom(&mut self, bottom: Option<usize>) {
        self.ladder_bottoms.push(bottom);
    }
}

/// The energy totals an [`AuditCollector`] replayed from the decision
/// stream; bitwise-equal to the corresponding [`AppReport`] fields.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AuditEnergy {
    /// Managed energy, replayed per decision.
    pub energy: EnergyBreakdown,
    /// Always-on energy, replayed per decision.
    pub base_energy: EnergyBreakdown,
}

/// The result of auditing one application × one power manager.
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// The aggregate report — identical to what
    /// [`evaluate_prepared`](crate::evaluate_prepared) returns for the
    /// same inputs.
    pub report: AppReport,
    /// Every decision, in (run, access) order.
    pub records: Vec<DecisionRecord>,
    /// Aggregate audit metrics over all runs.
    pub metrics: MetricsRegistry,
    /// Per-decision ladder bottom-out states, aligned with `records`.
    /// Empty unless the audit ran through the multi-state engine
    /// (`crate::audit_prepared_multistate`).
    pub ladder_bottoms: Vec<Option<usize>>,
    /// Energy totals replayed from the decision stream (bitwise-equal
    /// to the report's).
    pub audit_energy: AuditEnergy,
}

/// [`evaluate_prepared`](crate::evaluate_prepared) with an attached
/// [`DecisionObserver`] — the single evaluation driver behind the plain
/// path ([`NullObserver`]), `pcap audit` ([`AuditCollector`]) and the
/// bench guard ([`MetricsObserver`]).
///
/// # Panics
///
/// Panics if `config` disagrees with the preparation config on cache
/// or disk parameters (the streams would be stale).
pub fn evaluate_prepared_observed<O: DecisionObserver>(
    prepared: &PreparedTrace,
    config: &SimConfig,
    kind: PowerManagerKind,
    observer: &mut O,
) -> AppReport {
    evaluate_prepared_instrumented(prepared, config, kind, observer, &pcap_obs::NullPipeline)
}

/// The fully generic evaluation core: a [`DecisionObserver`] for the
/// per-decision audit stream *and* a [`pcap_obs::PipelineObserver`] for
/// pipeline-level spans and counters. Both default observers
/// ([`NullObserver`], [`pcap_obs::NullPipeline`]) compile their
/// respective layers out, so every wrapper above this function pays
/// only for the layers it actually attaches.
///
/// Pipeline events: one `eval:{app}×{manager}` span around the whole
/// run loop, one `runs` counter increment per simulated run, and an
/// `eval_us` histogram sample for the span's duration.
///
/// # Panics
///
/// Panics if `config` disagrees with the preparation config on cache
/// or disk parameters (the streams would be stale).
pub fn evaluate_prepared_instrumented<O, P>(
    prepared: &PreparedTrace,
    config: &SimConfig,
    kind: PowerManagerKind,
    observer: &mut O,
    pipeline: &P,
) -> AppReport
where
    O: DecisionObserver,
    P: pcap_obs::PipelineObserver,
{
    assert!(
        prepared.matches(config),
        "evaluate_prepared: config changes cache/disk parameters; rebuild the PreparedTrace"
    );
    if P::ENABLED {
        let name = format!("eval:{}×{}", prepared.app(), kind.label());
        let started = std::time::Instant::now();
        pipeline.span_begin(&name);
        let report = evaluate_prepared_core(prepared, config, kind, observer);
        pipeline.span_end(&name);
        pipeline.observe_us("eval_us", started.elapsed().as_micros() as u64);
        pipeline.counter_add("runs", prepared.len() as u64);
        return report;
    }
    evaluate_prepared_core(prepared, config, kind, observer)
}

fn evaluate_prepared_core<O: DecisionObserver>(
    prepared: &PreparedTrace,
    config: &SimConfig,
    kind: PowerManagerKind,
    observer: &mut O,
) -> AppReport {
    let mut manager = kind.manager(config);
    let mut report = AppReport {
        app: Arc::clone(prepared.app()),
        manager: kind.label(),
        local: PredictionCounts::default(),
        global: PredictionCounts::default(),
        energy: EnergyBreakdown::default(),
        base_energy: EnergyBreakdown::default(),
        table_entries: None,
        table_aliases: None,
    };
    let mut scratch = EngineScratch::new();
    for (run, streams) in prepared.streams().iter().enumerate() {
        observer.on_run_start(run as u32);
        let outcome = simulate_run_observed(streams, config, &mut manager, &mut scratch, observer);
        report.local += outcome.local;
        report.global += outcome.global;
        report.energy += outcome.energy;
        report.base_energy += outcome.base_energy;
        manager.on_run_end();
    }
    report.table_entries = manager.table_entries();
    report.table_aliases = manager.table_aliases();
    report
}

/// Audits one power manager against a prepared trace: runs the normal
/// evaluation with an [`AuditCollector`] attached and returns the
/// aggregate report together with the full decision stream, metrics
/// and replayed energy totals.
pub fn audit_prepared(
    prepared: &PreparedTrace,
    config: &SimConfig,
    kind: PowerManagerKind,
) -> AuditOutcome {
    let mut collector = AuditCollector::new();
    let report = evaluate_prepared_observed(prepared, config, kind, &mut collector);
    let (records, metrics, ladder_bottoms, audit_energy) = collector.finish();
    AuditOutcome {
        report,
        records,
        metrics,
        ladder_bottoms,
        audit_energy,
    }
}

/// Serializes decision records as JSON Lines (one compact object per
/// line, trailing newline per line) — the `pcap audit --jsonl` format.
pub fn records_to_jsonl(records: &[DecisionRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&serde_json::to_string(record).expect("decision records serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(verdict: GapVerdict, gap_us: u64, delta: f64) -> DecisionRecord {
        DecisionRecord {
            run: 0,
            access: 0,
            at: SimTime::from_secs(1),
            pid: Pid(1),
            pc: Pc(0x10),
            signature: Some(Signature(0x10)),
            table_len: Some(2),
            vote_delay: Some(SimDuration::from_secs(1)),
            vote_source: Some(VoteSource::Primary),
            local_gap: SimDuration(gap_us),
            local_verdict: verdict,
            global_gap: SimDuration(gap_us),
            shutdown_at: matches!(verdict, GapVerdict::Hit | GapVerdict::Miss)
                .then(|| SimTime::from_secs(2)),
            shutdown_source: matches!(verdict, GapVerdict::Hit | GapVerdict::Miss)
                .then_some(VoteSource::Primary),
            verdict,
            energy_delta_j: delta,
        }
    }

    #[test]
    fn metrics_registry_classifies_verdicts() {
        let mut m = MetricsRegistry::new();
        m.observe(&record(GapVerdict::Hit, 20_000_000, -1.5));
        m.observe(&record(GapVerdict::Miss, 6_000_000, 0.5));
        m.observe(&record(GapVerdict::NotPredicted, 10_000_000, 0.0));
        m.observe(&record(GapVerdict::Short, 100, 0.0));
        assert_eq!(m.decisions, 4);
        assert_eq!((m.hits, m.misses, m.not_predicted, m.short), (1, 1, 1, 1));
        assert_eq!(m.shutdowns(), 2);
        assert_eq!(m.shutdowns_primary, 2);
        assert_eq!(m.shutdowns_backup, 0);
        assert!((m.energy_delta_j - (-1.0)).abs() < 1e-12);
        assert_eq!(m.gap_histogram.total(), 4);
        assert_eq!(m.latency_histogram.total(), 2, "only shutdowns");
    }

    #[test]
    fn jsonl_is_one_compact_object_per_line() {
        let records = [
            record(GapVerdict::Hit, 20_000_000, -1.5),
            record(GapVerdict::Short, 100, 0.0),
        ];
        let text = records_to_jsonl(&records);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(text.ends_with('\n'));
        assert!(lines[0].starts_with("{\"run\":0,\"access\":0,"));
        assert!(lines[0].contains("\"verdict\":\"Hit\""));
        assert!(lines[0].contains("\"vote_source\":\"Primary\""));
        assert!(lines[1].contains("\"shutdown_at\":null"));
    }

    #[test]
    fn shutdown_latency_measures_from_gap_start() {
        let r = record(GapVerdict::Hit, 20_000_000, -1.0);
        assert_eq!(r.shutdown_latency(), Some(SimDuration::from_secs(1)));
        assert_eq!(
            record(GapVerdict::Short, 5, 0.0).shutdown_latency(),
            None,
            "no shutdown, no latency"
        );
        assert_eq!(r.energy_delta(), Joules(-1.0));
    }
}
