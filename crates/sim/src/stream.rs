//! Fleet-scale streaming pipeline: generate → filter → evaluate →
//! drop, device by device, in bounded memory.
//!
//! The prepare-once path ([`PreparedTrace`](crate::PreparedTrace))
//! materializes every run's [`RunStreams`] before evaluating — ideal
//! for a 10-manager grid over six traces, hopeless for a million
//! devices. This module fuses the three pipeline stages instead: each
//! worker owns one [`StreamWorker`] holding a file cache, one stream
//! buffer, one manager and one engine scratch, and pushes every run of
//! every device through *rebuild → simulate → discard* in place. Peak
//! memory is one run's events per worker regardless of fleet size.
//!
//! Determinism contract:
//!
//! * Device `d` of a [`DevicePopulation`] runs app `ALL[d % 6]` under
//!   the seed of [`pcap_workload::device_seed`]; cohort 0 uses the base
//!   seed verbatim, so a six-device fleet at the golden seed is the
//!   legacy six-app grid.
//! * Per device, the evaluation replays
//!   [`evaluate_prepared`](crate::evaluate_prepared)'s accumulation
//!   order exactly (run order, `local → global → energy → base_energy`,
//!   table stats read after the last run), so every
//!   [`DeviceOutcome`] is byte-identical to the prepare-once report for
//!   the same trace.
//! * The fleet is folded in fixed [`FLEET_CHUNK`]-device chunks; chunk
//!   results merge in chunk order. Chunk boundaries do not depend on
//!   `--jobs`, so the aggregate is byte-identical for any worker count.

use crate::audit::NullObserver;
use crate::engine::{simulate_run_observed, AppReport, EngineScratch, RunOutcome};
use crate::factory::{Manager, PowerManagerKind};
use crate::metrics::{EnergyBreakdown, PredictionCounts};
use crate::streams::RunStreams;
use crate::sweep::SweepRunner;
use crate::SimConfig;
use pcap_cache::FileCache;
use pcap_trace::{TraceError, TraceRun};
use pcap_workload::{DevicePopulation, PaperApp};
use serde::Serialize;
use std::sync::Arc;

/// Devices per work unit. Fixed (never derived from the job count) so
/// that chunk boundaries — and therefore the floating-point merge
/// order — are identical for every `--jobs` value.
pub const FLEET_CHUNK: u64 = 1024;

/// One worker's reusable pipeline state: a file cache, one stream
/// buffer, one power manager and one engine scratch, all recycled
/// run after run and device after device.
///
/// After a warm-up device per app shape, the filter and evaluate
/// stages run allocation-free: every buffer is cleared, never dropped
/// (`tests/zero_alloc_stream.rs` pins this with a counting allocator).
pub struct StreamWorker {
    config: SimConfig,
    kind: PowerManagerKind,
    manager: Manager,
    cache: FileCache,
    streams: RunStreams,
    scratch: EngineScratch,
}

impl StreamWorker {
    /// Creates a worker for `kind` under `config`.
    ///
    /// Predictor-box recycling is enabled exactly when
    /// [`PowerManagerKind::recyclable_predictors`] holds — the one
    /// manager created here must outlive every device this worker
    /// evaluates, which is what makes recycling sound (pooled boxes
    /// keep handles to this manager's shared state, reset per device).
    pub fn new(config: &SimConfig, kind: PowerManagerKind) -> StreamWorker {
        let manager = kind.manager(config);
        let mut scratch = EngineScratch::new();
        if kind.recyclable_predictors() {
            scratch.enable_predictor_pool();
        }
        StreamWorker {
            config: config.clone(),
            kind,
            manager,
            cache: FileCache::new(config.cache.clone()),
            streams: RunStreams::empty(),
            scratch,
        }
    }

    /// The manager kind this worker evaluates.
    pub fn kind(&self) -> PowerManagerKind {
        self.kind
    }

    /// Starts a new device: resets the manager's shared prediction
    /// state so the device starts from the same blank slate a fresh
    /// manager would (`Manager::reset_shared` ≡ new, capacity kept).
    pub fn begin_device(&mut self) {
        self.manager.reset_shared();
    }

    /// Streams one run through filter and evaluation: rebuilds the
    /// worker's [`RunStreams`] in place against its recycled cache,
    /// simulates, and ends the run on the manager — the exact per-run
    /// sequence of the prepare-once evaluator.
    pub fn evaluate_run(&mut self, run: &TraceRun) -> RunOutcome {
        self.streams.rebuild(run, &self.config, &mut self.cache);
        let outcome = simulate_run_observed(
            &self.streams,
            &self.config,
            &mut self.manager,
            &mut self.scratch,
            &mut NullObserver,
        );
        self.manager.on_run_end();
        outcome
    }

    /// Cache-filtered disk accesses of the most recent
    /// [`evaluate_run`](Self::evaluate_run).
    pub fn last_run_accesses(&self) -> usize {
        self.streams.accesses.len()
    }

    /// Ends a device: reads the manager's table statistics (exactly
    /// what the prepare-once evaluator reports after its last run).
    pub fn finish_device(&self) -> (Option<usize>, Option<u64>) {
        (self.manager.table_entries(), self.manager.table_aliases())
    }

    /// Evaluates device `device` of `pop` end to end: generates each
    /// run (the only allocating stage), streams it through
    /// [`evaluate_run`](Self::evaluate_run), and drops it.
    /// `max_runs` truncates the device's Table 1 execution count (the
    /// `--quick` mode); `None` evaluates the full trace.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceError`] from run generation.
    pub fn evaluate_device(
        &mut self,
        pop: &DevicePopulation,
        device: u64,
        max_runs: Option<usize>,
    ) -> Result<DeviceOutcome, TraceError> {
        self.begin_device();
        let runs = max_runs.map_or(pop.runs(device), |cap| pop.runs(device).min(cap));
        let mut out = DeviceOutcome {
            device,
            runs: 0,
            accesses: 0,
            local: PredictionCounts::default(),
            global: PredictionCounts::default(),
            energy: EnergyBreakdown::default(),
            base_energy: EnergyBreakdown::default(),
            table_entries: None,
            table_aliases: None,
        };
        for run in 0..runs {
            let trace_run = pop.generate_run(device, run)?;
            let outcome = self.evaluate_run(&trace_run);
            out.local += outcome.local;
            out.global += outcome.global;
            out.energy += outcome.energy;
            out.base_energy += outcome.base_energy;
            out.runs += 1;
            out.accesses += self.streams.accesses.len() as u64;
        }
        let (entries, aliases) = self.finish_device();
        out.table_entries = entries;
        out.table_aliases = aliases;
        Ok(out)
    }
}

/// Per-shard online evaluator: the recycled rebuild/simulate state of a
/// [`StreamWorker`] *without* a manager — the serving layer owns one
/// [`Manager`] per live device (predictor tables must persist across a
/// device's runs even when other devices' runs interleave between them
/// on the same shard).
///
/// Unlike [`StreamWorker::new`], the predictor pool is never enabled
/// here: pooled predictor boxes hold handles into one specific
/// manager's shared table, which is unsound when every call may bring a
/// different manager. Per-run predictor boxes are instead allocated
/// fresh, exactly as [`crate::audit_prepared`] does — which is also
/// what makes the online decision stream byte-identical to the offline
/// audit stream.
pub struct ShardEvaluator {
    config: SimConfig,
    cache: FileCache,
    streams: RunStreams,
    scratch: EngineScratch,
}

impl ShardEvaluator {
    /// Creates an evaluator under `config`.
    pub fn new(config: &SimConfig) -> ShardEvaluator {
        ShardEvaluator {
            config: config.clone(),
            cache: FileCache::new(config.cache.clone()),
            streams: RunStreams::empty(),
            scratch: EngineScratch::new(),
        }
    }

    /// The simulation configuration this evaluator was built for.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Streams one run of one device through filter and evaluation
    /// with an external per-device `manager` and a decision `observer`:
    /// rebuild → simulate → `manager.on_run_end()`, the exact per-run
    /// sequence of both [`StreamWorker::evaluate_run`] and the
    /// prepare-once evaluator. The caller is responsible for
    /// [`DecisionObserver::on_run_start`] (it needs the device's run
    /// counter, which lives with the session, not here).
    pub fn evaluate_run_observed<O: crate::audit::DecisionObserver>(
        &mut self,
        run: &TraceRun,
        manager: &mut Manager,
        observer: &mut O,
    ) -> RunOutcome {
        self.streams.rebuild(run, &self.config, &mut self.cache);
        let outcome = simulate_run_observed(
            &self.streams,
            &self.config,
            manager,
            &mut self.scratch,
            observer,
        );
        manager.on_run_end();
        outcome
    }

    /// Cache-filtered disk accesses of the most recent
    /// [`evaluate_run_observed`](Self::evaluate_run_observed).
    pub fn last_run_accesses(&self) -> usize {
        self.streams.accesses.len()
    }
}

/// One device's aggregate evaluation — the streaming equivalent of an
/// [`AppReport`], kept `Copy` so fleet folding never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DeviceOutcome {
    /// Fleet index of the device.
    pub device: u64,
    /// Executions evaluated (Table 1 count, possibly `--quick`-capped).
    pub runs: u32,
    /// Cache-filtered disk accesses across all executions.
    pub accesses: u64,
    /// Local prediction counts, summed over executions.
    pub local: PredictionCounts,
    /// Global prediction counts, summed over executions.
    pub global: PredictionCounts,
    /// Managed energy breakdown.
    pub energy: EnergyBreakdown,
    /// Always-on energy breakdown.
    pub base_energy: EnergyBreakdown,
    /// Prediction-table entries after the last execution.
    pub table_entries: Option<usize>,
    /// Signature-aliasing events across all executions.
    pub table_aliases: Option<u64>,
}

impl DeviceOutcome {
    /// Fraction of base energy eliminated on this device.
    pub fn savings(&self) -> f64 {
        self.energy.savings_vs(&self.base_energy)
    }

    /// The outcome as a legacy [`AppReport`], for comparison against
    /// the prepare-once path (`app` is the device's application name).
    pub fn as_report(&self, app: &str, kind: PowerManagerKind) -> AppReport {
        AppReport {
            app: Arc::from(app),
            manager: kind.label(),
            local: self.local,
            global: self.global,
            energy: self.energy,
            base_energy: self.base_energy,
            table_entries: self.table_entries,
            table_aliases: self.table_aliases,
        }
    }
}

/// Evaluates one device in isolation and returns the legacy-shaped
/// report — the single-device entry point the parity tests compare
/// byte-for-byte against [`evaluate_prepared`](crate::evaluate_prepared).
///
/// # Errors
///
/// Propagates [`TraceError`] from run generation.
pub fn stream_device_report(
    pop: &DevicePopulation,
    device: u64,
    config: &SimConfig,
    kind: PowerManagerKind,
    max_runs: Option<usize>,
) -> Result<AppReport, TraceError> {
    let mut worker = StreamWorker::new(config, kind);
    let outcome = worker.evaluate_device(pop, device, max_runs)?;
    Ok(outcome.as_report(pop.device(device).app.name(), kind))
}

/// Aggregate counters for a set of devices (one per app, plus the
/// fleet total). `Copy`, so chunk folding stays allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct FleetSlot {
    /// Devices folded into this slot.
    pub devices: u64,
    /// Executions evaluated.
    pub runs: u64,
    /// Cache-filtered disk accesses.
    pub accesses: u64,
    /// Local prediction counts.
    pub local: PredictionCounts,
    /// Global prediction counts.
    pub global: PredictionCounts,
    /// Managed energy.
    pub energy: EnergyBreakdown,
    /// Always-on energy.
    pub base_energy: EnergyBreakdown,
    /// Sum of per-device prediction-table entry counts.
    pub table_entries: u64,
    /// Sum of per-device aliasing events.
    pub table_aliases: u64,
}

impl FleetSlot {
    /// Folds one device into the slot (devices arrive in fleet order).
    pub fn absorb(&mut self, outcome: &DeviceOutcome) {
        self.devices += 1;
        self.runs += u64::from(outcome.runs);
        self.accesses += outcome.accesses;
        self.local += outcome.local;
        self.global += outcome.global;
        self.energy += outcome.energy;
        self.base_energy += outcome.base_energy;
        self.table_entries += outcome.table_entries.unwrap_or(0) as u64;
        self.table_aliases += outcome.table_aliases.unwrap_or(0);
    }

    /// Merges another slot (chunks arrive in chunk order).
    pub fn merge(&mut self, other: &FleetSlot) {
        self.devices += other.devices;
        self.runs += other.runs;
        self.accesses += other.accesses;
        self.local += other.local;
        self.global += other.global;
        self.energy += other.energy;
        self.base_energy += other.base_energy;
        self.table_entries += other.table_entries;
        self.table_aliases += other.table_aliases;
    }

    /// Fraction of base energy eliminated across the slot.
    pub fn savings(&self) -> f64 {
        self.energy.savings_vs(&self.base_energy)
    }

    /// Global hit fraction of shutdown opportunities (coverage, §6.1).
    pub fn coverage(&self) -> f64 {
        self.global.coverage()
    }
}

/// Per-chunk accumulator: one [`FleetSlot`] per paper app.
type ChunkSlots = [FleetSlot; 6];

/// Fleet-aggregate evaluation of a [`DevicePopulation`].
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Fleet size.
    pub devices: u64,
    /// Base seed the fleet derives from.
    pub base_seed: u64,
    /// Power-manager label.
    pub manager: String,
    /// Per-device execution cap (`--quick`), if any.
    pub max_runs: Option<usize>,
    /// Per-app aggregates, in `PaperApp::ALL` order (always six).
    pub per_app: Vec<FleetSlot>,
    /// Whole-fleet aggregate.
    pub total: FleetSlot,
}

impl FleetReport {
    /// Rows of the fleet table: `(app name, slot)` in table order.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, &FleetSlot)> {
        PaperApp::ALL
            .iter()
            .zip(self.per_app.iter())
            .map(|(app, slot)| (app.name(), slot))
    }
}

/// Streams the whole fleet through the fused pipeline on `runner`,
/// returning per-app and total aggregates. Memory stays bounded by
/// `jobs × (one run + one worker's recycled state)` regardless of
/// `pop.devices()`; output is byte-identical for every job count (see
/// the module docs for the merge-order argument).
///
/// # Errors
///
/// Propagates the first [`TraceError`] from run generation, in fleet
/// order.
pub fn sweep_fleet(
    pop: &DevicePopulation,
    config: &SimConfig,
    kind: PowerManagerKind,
    runner: &SweepRunner,
    max_runs: Option<usize>,
) -> Result<FleetReport, TraceError> {
    sweep_fleet_observed(pop, config, kind, runner, max_runs, &pcap_obs::NullPipeline)
}

/// [`sweep_fleet`] with a [`pcap_obs::PipelineObserver`] attached: each
/// chunk runs inside a `fleet:{start}..{end}` task span, and every
/// chunk feeds the `fleet_devices` counter.
///
/// # Errors
///
/// Propagates the first [`TraceError`] from run generation, in fleet
/// order.
pub fn sweep_fleet_observed<P: pcap_obs::PipelineObserver>(
    pop: &DevicePopulation,
    config: &SimConfig,
    kind: PowerManagerKind,
    runner: &SweepRunner,
    max_runs: Option<usize>,
    pipeline: &P,
) -> Result<FleetReport, TraceError> {
    let devices = pop.devices();
    let mut chunks: Vec<(u64, u64)> = Vec::new();
    let mut start = 0;
    while start < devices {
        let end = (start + FLEET_CHUNK).min(devices);
        chunks.push((start, end));
        start = end;
    }

    let results: Vec<Result<ChunkSlots, TraceError>> = runner.run_observed(
        "fleet",
        &chunks,
        |_, &(start, end)| {
            let mut worker = StreamWorker::new(config, kind);
            let mut slots = ChunkSlots::default();
            for device in start..end {
                let outcome = worker.evaluate_device(pop, device, max_runs)?;
                slots[(device % 6) as usize].absorb(&outcome);
            }
            if P::ENABLED {
                pipeline.counter_add("fleet_devices", end - start);
            }
            Ok(slots)
        },
        |_, &(start, end)| format!("fleet:{start}..{end}"),
        pipeline,
    );

    let mut per_app = ChunkSlots::default();
    for chunk in results {
        let slots = chunk?;
        for (into, from) in per_app.iter_mut().zip(slots.iter()) {
            into.merge(from);
        }
    }
    let mut total = FleetSlot::default();
    for slot in &per_app {
        total.merge(slot);
    }
    Ok(FleetReport {
        devices,
        base_seed: pop.base_seed(),
        manager: kind.label(),
        max_runs,
        per_app: per_app.to_vec(),
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_workload::AppModel;

    fn quick_pop(devices: u64) -> DevicePopulation {
        DevicePopulation::new(devices, 42)
    }

    #[test]
    fn streaming_device_matches_prepared_path() {
        // Device 4 is nedit (cohort 0 → seed 42 verbatim): the full
        // byte-parity grid over all six apps lives in
        // tests/stream_parity.rs; this is the in-crate smoke version.
        let pop = quick_pop(6);
        let config = SimConfig::paper();
        let trace = PaperApp::Nedit.spec().generate_trace(42).unwrap();
        let prepared = crate::PreparedTrace::build(&trace, &config);
        let legacy = crate::evaluate_prepared(&prepared, &config, PowerManagerKind::PCAP);
        let streamed =
            stream_device_report(&pop, 4, &config, PowerManagerKind::PCAP, None).unwrap();
        assert_eq!(legacy, streamed);
    }

    #[test]
    fn shard_evaluator_matches_audit_with_interleaved_devices() {
        // Two devices' runs interleaved through ONE evaluator with
        // per-device managers must each produce the audit stream the
        // offline path produces for that device alone. (nedit and
        // mplayer are the two cheapest apps.)
        use crate::audit::DecisionObserver;
        let config = SimConfig::paper();
        let kind = PowerManagerKind::PCAP;
        let apps = [PaperApp::Nedit, PaperApp::Mplayer];
        let offline: Vec<_> = apps
            .iter()
            .map(|app| {
                let trace = app.spec().generate_trace(42).unwrap();
                let prepared = crate::PreparedTrace::build(&trace, &config);
                crate::audit_prepared(&prepared, &config, kind)
            })
            .collect();

        let mut eval = ShardEvaluator::new(&config);
        let mut managers = [kind.manager(&config), kind.manager(&config)];
        let mut collectors = [crate::AuditCollector::new(), crate::AuditCollector::new()];
        let traces: Vec<_> = apps
            .iter()
            .map(|app| app.spec().generate_trace(42).unwrap())
            .collect();
        let max_runs = traces.iter().map(|t| t.runs.len()).max().unwrap();
        for run in 0..max_runs {
            for (d, trace) in traces.iter().enumerate() {
                if let Some(trace_run) = trace.runs.get(run) {
                    collectors[d].on_run_start(run as u32);
                    eval.evaluate_run_observed(trace_run, &mut managers[d], &mut collectors[d]);
                }
            }
        }
        for (d, collector) in collectors.into_iter().enumerate() {
            let (records, metrics, _, energy) = collector.finish();
            assert_eq!(records, offline[d].records, "device {d} decision stream");
            assert_eq!(metrics, offline[d].metrics, "device {d} metrics");
            assert_eq!(energy, offline[d].audit_energy, "device {d} energy");
        }
    }

    #[test]
    fn fleet_output_is_jobs_independent() {
        let pop = quick_pop(13); // crosses a cohort boundary
        let config = SimConfig::paper();
        let serial = sweep_fleet(
            &pop,
            &config,
            PowerManagerKind::PCAP,
            &SweepRunner::new(1),
            Some(2),
        )
        .unwrap();
        let parallel = sweep_fleet(
            &pop,
            &config,
            PowerManagerKind::PCAP,
            &SweepRunner::new(8),
            Some(2),
        )
        .unwrap();
        assert_eq!(serial.per_app, parallel.per_app);
        assert_eq!(serial.total, parallel.total);
        assert_eq!(serial.total.devices, 13);
        assert_eq!(
            serial.total.runs,
            (0..13).map(|d| pop.runs(d).min(2) as u64).sum::<u64>()
        );
    }

    #[test]
    fn chunk_boundaries_do_not_depend_on_jobs() {
        // A fleet larger than one chunk folds identically through one
        // worker and many. (2 chunks × small per-device cap.)
        let pop = quick_pop(FLEET_CHUNK + 7);
        let config = SimConfig::paper();
        let a = sweep_fleet(
            &pop,
            &config,
            PowerManagerKind::Timeout,
            &SweepRunner::new(1),
            Some(1),
        )
        .unwrap();
        let b = sweep_fleet(
            &pop,
            &config,
            PowerManagerKind::Timeout,
            &SweepRunner::new(4),
            Some(1),
        )
        .unwrap();
        assert_eq!(a.total, b.total);
        assert_eq!(a.total.devices, FLEET_CHUNK + 7);
    }

    #[test]
    fn adaptive_timeout_does_not_recycle_predictors() {
        assert!(!PowerManagerKind::AdaptiveTimeout.recyclable_predictors());
        assert!(PowerManagerKind::PCAP.recyclable_predictors());
        // And a non-recyclable worker still evaluates correctly.
        let pop = quick_pop(2);
        let config = SimConfig::paper();
        let mut worker = StreamWorker::new(&config, PowerManagerKind::AdaptiveTimeout);
        let out = worker.evaluate_device(&pop, 0, Some(1)).unwrap();
        assert_eq!(out.runs, 1);
    }

    #[test]
    fn fleet_report_rows_follow_table_order() {
        let pop = quick_pop(7);
        let config = SimConfig::paper();
        let report = sweep_fleet(
            &pop,
            &config,
            PowerManagerKind::PCAP,
            &SweepRunner::new(2),
            Some(1),
        )
        .unwrap();
        let names: Vec<&str> = report.rows().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            ["mozilla", "writer", "impress", "xemacs", "nedit", "mplayer"]
        );
        // 7 devices: mozilla gets 2 (indices 0 and 6), others 1.
        assert_eq!(report.per_app[0].devices, 2);
        assert_eq!(report.per_app[1].devices, 1);
        assert_eq!(report.total.devices, 7);
    }
}
