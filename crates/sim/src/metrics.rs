//! Prediction and energy metrics reported by the simulator.

use pcap_core::VoteSource;
use pcap_disk::{GapBreakdown, Joules};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Shutdown-prediction counters, the raw material of Figures 6, 7, 9
/// and 10.
///
/// Fractions are normalized to `opportunities` (idle periods longer
/// than breakeven) exactly as the paper normalizes its bars, so
/// `hit + not_predicted + long-gap misses = opportunities` while
/// *miss* totals can push stacked bars above 100% (the paper's figures
/// reach 140%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PredictionCounts {
    /// Idle periods longer than breakeven — Table 1's "idle periods".
    pub opportunities: u64,
    /// Energy-saving shutdowns decided by the primary predictor.
    pub hit_primary: u64,
    /// Energy-saving shutdowns decided by the backup timeout.
    pub hit_backup: u64,
    /// Energy-losing shutdowns decided by the primary predictor.
    pub miss_primary: u64,
    /// Energy-losing shutdowns decided by the backup timeout.
    pub miss_backup: u64,
    /// Opportunities for which no shutdown was issued.
    pub not_predicted: u64,
}

impl PredictionCounts {
    /// Total energy-saving shutdowns.
    pub fn hits(&self) -> u64 {
        self.hit_primary + self.hit_backup
    }

    /// Total energy-losing shutdowns.
    pub fn misses(&self) -> u64 {
        self.miss_primary + self.miss_backup
    }

    /// Hits as a fraction of opportunities ("coverage", §6.1).
    pub fn coverage(&self) -> f64 {
        self.fraction(self.hits())
    }

    /// Misses as a fraction of opportunities (how the paper normalizes
    /// mispredictions for its figures).
    pub fn miss_rate(&self) -> f64 {
        self.fraction(self.misses())
    }

    /// Unexploited opportunities as a fraction of opportunities.
    pub fn not_predicted_rate(&self) -> f64 {
        self.fraction(self.not_predicted)
    }

    fn fraction(&self, n: u64) -> f64 {
        if self.opportunities == 0 {
            0.0
        } else {
            n as f64 / self.opportunities as f64
        }
    }

    /// Records an energy-saving shutdown.
    pub fn record_hit(&mut self, source: VoteSource) {
        match source {
            VoteSource::Primary => self.hit_primary += 1,
            VoteSource::Backup => self.hit_backup += 1,
        }
    }

    /// Records an energy-losing shutdown.
    pub fn record_miss(&mut self, source: VoteSource) {
        match source {
            VoteSource::Primary => self.miss_primary += 1,
            VoteSource::Backup => self.miss_backup += 1,
        }
    }
}

impl Add for PredictionCounts {
    type Output = PredictionCounts;
    fn add(self, rhs: PredictionCounts) -> PredictionCounts {
        PredictionCounts {
            opportunities: self.opportunities + rhs.opportunities,
            hit_primary: self.hit_primary + rhs.hit_primary,
            hit_backup: self.hit_backup + rhs.hit_backup,
            miss_primary: self.miss_primary + rhs.miss_primary,
            miss_backup: self.miss_backup + rhs.miss_backup,
            not_predicted: self.not_predicted + rhs.not_predicted,
        }
    }
}

impl AddAssign for PredictionCounts {
    fn add_assign(&mut self, rhs: PredictionCounts) {
        *self = *self + rhs;
    }
}

/// Disk-energy breakdown in the four components of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy serving I/O.
    pub busy: Joules,
    /// Energy inside idle periods not longer than breakeven.
    pub idle_short: Joules,
    /// Residual energy inside idle periods longer than breakeven
    /// (spinning before shutdown + standby).
    pub idle_long: Joules,
    /// Shutdown + spin-up transition energy (correct and incorrect).
    pub power_cycle: Joules,
}

impl EnergyBreakdown {
    /// Total disk energy.
    pub fn total(&self) -> Joules {
        self.busy + self.idle_short + self.idle_long + self.power_cycle
    }

    /// Fraction of `base`'s energy eliminated by this configuration.
    pub fn savings_vs(&self, base: &EnergyBreakdown) -> f64 {
        let base_total = base.total().0;
        if base_total <= 0.0 {
            0.0
        } else {
            1.0 - self.total().0 / base_total
        }
    }

    /// Adds a gap's contribution under the Figure 8 categorization:
    /// gaps longer than breakeven feed `idle_long`, others `idle_short`;
    /// transition energy always feeds `power_cycle`.
    pub fn add_gap(&mut self, gap_longer_than_breakeven: bool, breakdown: GapBreakdown) {
        let residual = breakdown.idle + breakdown.standby;
        if gap_longer_than_breakeven {
            self.idle_long += residual;
        } else {
            self.idle_short += residual;
        }
        self.power_cycle += breakdown.power_cycle;
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            busy: self.busy + rhs.busy,
            idle_short: self.idle_short + rhs.idle_short,
            idle_long: self.idle_long + rhs.idle_long,
            power_cycle: self.power_cycle + rhs.power_cycle,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_disk::DiskParams;
    use pcap_types::SimDuration;

    #[test]
    fn fractions() {
        let c = PredictionCounts {
            opportunities: 10,
            hit_primary: 6,
            hit_backup: 2,
            miss_primary: 1,
            miss_backup: 0,
            not_predicted: 2,
        };
        assert_eq!(c.hits(), 8);
        assert!((c.coverage() - 0.8).abs() < 1e-12);
        assert!((c.miss_rate() - 0.1).abs() < 1e-12);
        assert!((c.not_predicted_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_opportunities_is_zero_rates() {
        let c = PredictionCounts::default();
        assert_eq!(c.coverage(), 0.0);
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    fn record_and_merge() {
        let mut a = PredictionCounts::default();
        a.record_hit(VoteSource::Primary);
        a.record_hit(VoteSource::Backup);
        a.record_miss(VoteSource::Backup);
        let mut b = PredictionCounts::default();
        b.record_miss(VoteSource::Primary);
        b += a;
        assert_eq!(b.hit_primary, 1);
        assert_eq!(b.hit_backup, 1);
        assert_eq!(b.miss_primary, 1);
        assert_eq!(b.miss_backup, 1);
    }

    #[test]
    fn energy_categorization() {
        let params = DiskParams::fujitsu_mhf2043at();
        let mut e = EnergyBreakdown::default();
        let long_gap = SimDuration::from_secs(30);
        e.add_gap(
            true,
            GapBreakdown::managed(&params, long_gap, SimDuration::from_secs(1)),
        );
        let short_gap = SimDuration::from_secs(3);
        e.add_gap(false, GapBreakdown::unmanaged(&params, short_gap));
        assert!(e.idle_long.0 > 0.0);
        assert!((e.idle_short.0 - 2.85).abs() < 1e-9);
        assert!((e.power_cycle.0 - 4.76).abs() < 1e-9);
    }

    #[test]
    fn savings() {
        let base = EnergyBreakdown {
            busy: Joules(10.0),
            idle_short: Joules(10.0),
            idle_long: Joules(80.0),
            power_cycle: Joules(0.0),
        };
        let managed = EnergyBreakdown {
            busy: Joules(10.0),
            idle_short: Joules(10.0),
            idle_long: Joules(5.0),
            power_cycle: Joules(5.0),
        };
        assert!((managed.savings_vs(&base) - 0.7).abs() < 1e-12);
        assert_eq!(managed.savings_vs(&EnergyBreakdown::default()), 0.0);
    }
}
