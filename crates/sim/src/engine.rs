//! The trace-driven multi-process power-management simulator.
//!
//! One pass over each execution produces both evaluations the paper
//! reports:
//!
//! * **local** (Figure 6): every process's predictor classified against
//!   that process's own idle gaps, summed over processes;
//! * **global** (Figures 7–10): per-process standing votes combined by
//!   the [`GlobalPredictor`]; the disk shuts down at the latest
//!   vote-ready instant, with energy integrated per Table 2 and
//!   mispredictions attributed to the last-deciding predictor.
//!
//! Interpretation choices (see `DESIGN.md` §2): a shutdown is a *hit*
//! iff its device-off interval exceeds the breakeven time; trace time
//! is not stretched by spin-ups; the interval before a run's first disk
//! access is excluded; the terminal gap (last access → run end) is
//! included.
//!
//! The simulation borrows a pre-built [`RunStreams`] (which carries the
//! run's accesses, gaps, lifetimes and lifecycle) and mutates only the
//! manager plus a reusable [`EngineScratch`], so one prepared stream
//! can be shared by the whole manager grid — see [`crate::prepared`].

use crate::audit::{DecisionObserver, DecisionRecord, GapEnergy, NullObserver};
use crate::factory::{Manager, PowerManagerKind};
use crate::metrics::{EnergyBreakdown, PredictionCounts};
use crate::prepared::{evaluate_prepared, PreparedTrace};
use crate::streams::{LifecycleEvent, LifecycleKind, RunStreams};
use crate::SimConfig;
use pcap_core::{GlobalDecision, GlobalPredictor, IdlePredictor, VoteSource};
use pcap_disk::GapBreakdown;
use pcap_trace::ApplicationTrace;
use pcap_types::{Pid, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The simulator's verdict on one application × one power manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppReport {
    /// Application name (shared with the source trace).
    pub app: std::sync::Arc<str>,
    /// Power-manager label ("TP", "PCAPh", …).
    pub manager: String,
    /// Local (per-process) prediction counts, summed over processes and
    /// executions — Figure 6.
    pub local: PredictionCounts,
    /// Global prediction counts — Figures 7, 9, 10.
    pub global: PredictionCounts,
    /// Managed energy breakdown — Figure 8.
    pub energy: EnergyBreakdown,
    /// Unmanaged (always-spinning) energy breakdown — Figure 8 "Base".
    pub base_energy: EnergyBreakdown,
    /// Prediction-table entries after all executions — Table 3.
    pub table_entries: Option<usize>,
    /// Detected signature-aliasing events (distinct PC paths colliding
    /// on one signature) across all executions.
    pub table_aliases: Option<u64>,
}

impl AppReport {
    /// Fraction of base energy eliminated (the §6.3 headline numbers).
    pub fn savings(&self) -> f64 {
        self.energy.savings_vs(&self.base_energy)
    }
}

/// Evaluates one power manager over a full application trace (all
/// executions, shared prediction state per the manager's reuse policy).
///
/// Prepares the trace's [`RunStreams`] internally; callers evaluating
/// *several* managers over the same trace should build one
/// [`PreparedTrace`] and call [`evaluate_prepared`] per manager
/// instead, sharing the preparation.
pub fn evaluate_app(
    trace: &ApplicationTrace,
    config: &SimConfig,
    kind: PowerManagerKind,
) -> AppReport {
    let prepared = PreparedTrace::build(trace, config);
    evaluate_prepared(&prepared, config, kind)
}

/// The verdict on one idle gap under a power manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapVerdict {
    /// Shutdown whose device-off interval exceeded breakeven.
    Hit,
    /// Shutdown that lost energy (off interval ≤ breakeven).
    Miss,
    /// Opportunity (gap > breakeven) with no shutdown.
    NotPredicted,
    /// Gap too short to matter; no shutdown was issued.
    Short,
}

/// One idle gap's full story, for `pcap inspect`-style debugging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapRecord {
    /// Index of the access that opened the gap.
    pub access_index: usize,
    /// Process whose access opened the gap.
    pub pid: Pid,
    /// When the gap started (access completion).
    pub start: SimTime,
    /// Gap length.
    pub length: SimDuration,
    /// When the disk shut down inside the gap, if it did, and who
    /// decided.
    pub shutdown: Option<(SimTime, VoteSource)>,
    /// The verdict.
    pub verdict: GapVerdict,
}

/// Per-run simulation outcome.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOutcome {
    /// Local prediction counts.
    pub local: PredictionCounts,
    /// Global prediction counts.
    pub global: PredictionCounts,
    /// Managed energy.
    pub energy: EnergyBreakdown,
    /// Unmanaged energy.
    pub base_energy: EnergyBreakdown,
}

/// Reusable per-run engine state: dense per-process predictor and
/// pending-idle tables keyed by the compact pid index of the current
/// [`RunStreams`]. Reusing one scratch across the runs of a trace (and
/// across managers) keeps the per-access path free of hashing and the
/// per-run path free of table reallocation.
#[derive(Default)]
pub struct EngineScratch {
    pub(crate) preds: Vec<Option<Box<dyn IdlePredictor>>>,
    pub(crate) pending_idle: Vec<Option<SimDuration>>,
    /// Per-run global predictor, cleared (capacity kept) between runs.
    pub(crate) global: GlobalPredictor,
    /// Retired per-process predictor boxes available for recycling; see
    /// [`EngineScratch::enable_predictor_pool`].
    pub(crate) pool: Vec<Box<dyn IdlePredictor>>,
    pub(crate) pool_enabled: bool,
}

impl EngineScratch {
    /// An empty scratch; tables grow to each run's process count.
    pub fn new() -> EngineScratch {
        EngineScratch::default()
    }

    /// Recycles per-process predictor boxes across process lifetimes
    /// instead of allocating a fresh box per process: a process exit
    /// parks its predictor (after `on_run_end` fully resets it) and the
    /// next process start pops it back.
    ///
    /// Opt-in because it is only sound when the manager's per-process
    /// state resets completely at `on_run_end` — true for PCAP, whose
    /// signature/history/pending state all clear (the surviving
    /// match/learn counters are report-only) — and when one `Manager`
    /// is kept alive for every run fed through this scratch (pooled
    /// boxes hold handles to that manager's shared table). The
    /// streaming fleet pipeline satisfies both; the legacy paths never
    /// enable it.
    pub fn enable_predictor_pool(&mut self) {
        self.pool_enabled = true;
    }

    pub(crate) fn reset(&mut self, pid_count: usize) {
        self.preds.clear();
        self.preds.resize_with(pid_count, || None);
        self.pending_idle.clear();
        self.pending_idle.resize(pid_count, None);
        self.global.clear();
    }
}

/// Live per-run simulation state. Process-indexed tables are dense
/// (compact pid index); the pid itself is only materialized at the
/// `GlobalPredictor` boundary.
pub(crate) struct RunState<'a> {
    pub(crate) manager: &'a mut Manager,
    pub(crate) oracle: bool,
    pub(crate) global: &'a mut GlobalPredictor,
    pub(crate) preds: &'a mut [Option<Box<dyn IdlePredictor>>],
    /// Gap lengths awaiting `on_idle_end` at each process's next access
    /// (or exit).
    pub(crate) pending_idle: &'a mut [Option<SimDuration>],
    pub(crate) pool: &'a mut Vec<Box<dyn IdlePredictor>>,
    pub(crate) pool_enabled: bool,
    pub(crate) pids: &'a [Pid],
}

impl RunState<'_> {
    fn start_process(&mut self, pidx: usize, at: SimTime) {
        let pid = self.pids[pidx];
        self.global.process_started(pid, at);
        self.global
            .record_vote(pid, at, self.manager.initial_vote());
        // A pooled box was fully reset by `on_run_end` at retirement, so
        // it is behaviorally a fresh `for_process` product (the pool is
        // only enabled for managers where that holds).
        self.preds[pidx] = match self.pool.pop() {
            Some(recycled) => Some(recycled),
            None => Some(self.manager.for_process(pid)),
        };
    }

    fn end_process(&mut self, pidx: usize) {
        if let Some(mut pred) = self.preds[pidx].take() {
            if let Some(gap) = self.pending_idle[pidx].take() {
                pred.on_idle_end(gap);
            }
            pred.on_run_end();
            if self.pool_enabled {
                self.pool.push(pred);
            }
        }
        self.global.process_exited(self.pids[pidx]);
    }

    pub(crate) fn apply(&mut self, event: LifecycleEvent) {
        match event.kind {
            LifecycleKind::Start => self.start_process(event.pidx as usize, event.time),
            LifecycleKind::Exit => self.end_process(event.pidx as usize),
        }
    }
}

/// Simulates one execution. Public for integration tests and the
/// examples; most callers want [`evaluate_app`] or
/// [`evaluate_prepared`].
pub fn simulate_run(streams: &RunStreams, config: &SimConfig, manager: &mut Manager) -> RunOutcome {
    simulate_run_observed(
        streams,
        config,
        manager,
        &mut EngineScratch::new(),
        &mut NullObserver,
    )
}

/// Adapts the per-decision audit stream back to the legacy
/// [`GapRecord`] log consumed by `pcap inspect`.
struct GapLogObserver<'a> {
    log: &'a mut Vec<GapRecord>,
}

impl DecisionObserver for GapLogObserver<'_> {
    fn on_decision(&mut self, record: DecisionRecord, _energy: &GapEnergy) {
        self.log.push(GapRecord {
            access_index: record.access as usize,
            pid: record.pid,
            start: record.at,
            length: record.global_gap,
            shutdown: record.shutdown_at.zip(record.shutdown_source),
            verdict: record.verdict,
        });
    }
}

/// [`simulate_run`] that additionally records every merged idle gap's
/// decision into `log` — the data behind `pcap inspect`.
pub fn simulate_run_logged(
    streams: &RunStreams,
    config: &SimConfig,
    manager: &mut Manager,
    log: &mut Vec<GapRecord>,
) -> RunOutcome {
    simulate_run_observed(
        streams,
        config,
        manager,
        &mut EngineScratch::new(),
        &mut GapLogObserver { log },
    )
}

/// [`simulate_run`] reusing a caller-owned [`EngineScratch`] — the
/// allocation-free path used by [`evaluate_prepared`].
pub fn simulate_run_reusing(
    streams: &RunStreams,
    config: &SimConfig,
    manager: &mut Manager,
    scratch: &mut EngineScratch,
) -> RunOutcome {
    simulate_run_observed(streams, config, manager, scratch, &mut NullObserver)
}

/// Simulates one execution, delivering every idle-gap decision to
/// `observer` (see [`DecisionObserver`]). With [`NullObserver`] the
/// audit path compiles away entirely; this is the single engine loop
/// behind [`simulate_run`], [`simulate_run_logged`] and
/// [`simulate_run_reusing`].
///
/// The caller is responsible for invoking
/// [`DecisionObserver::on_run_start`] if its sink distinguishes runs;
/// this function reports a single run's decisions with `run` left at 0.
pub fn simulate_run_observed<O: DecisionObserver>(
    streams: &RunStreams,
    config: &SimConfig,
    manager: &mut Manager,
    scratch: &mut EngineScratch,
    observer: &mut O,
) -> RunOutcome {
    let be = config.disk.breakeven_time();
    let window_state = manager.window_state();
    let mut out = RunOutcome::default();

    scratch.reset(streams.pid_count());
    let mut state = RunState {
        oracle: manager.is_oracle(),
        manager,
        global: &mut scratch.global,
        preds: &mut scratch.preds,
        pending_idle: &mut scratch.pending_idle,
        pool: &mut scratch.pool,
        pool_enabled: scratch.pool_enabled,
        pids: streams.pids(),
    };

    // Pre-resolved start/exit events in time order (the root's start at
    // time zero is the first entry).
    let lifecycle = streams.lifecycle();
    let mut li = 0usize;

    let n = streams.accesses.len();
    for i in 0..n {
        let access = streams.accesses[i];
        let completion = streams.completions[i];
        let local_gap = streams.local_gaps[i];
        let global_gap = streams.global_gaps[i];

        // Lifecycle events that happened before this access (when i ==
        // 0 nothing was stepped yet; later gaps already consumed
        // everything up to this access's arrival).
        while li < lifecycle.len() && lifecycle[li].time <= access.time {
            state.apply(lifecycle[li]);
            li += 1;
        }

        // Busy energy (both managed and base).
        let busy = config.disk.busy_power * config.disk.service_time(access.pages);
        out.energy.busy += busy;
        out.base_energy.busy += busy;

        // Route the access: kernel write-backs attributed to an exited
        // process act on behalf of the application (the root, index 0).
        let apidx = streams.access_pid_index(i);
        let pidx = if state.preds[apidx].is_some() {
            apidx
        } else {
            0
        };
        let vote = if let Some(pred) = state.preds[pidx].as_mut() {
            if let Some(gap) = state.pending_idle[pidx].take() {
                pred.on_idle_end(gap);
            }
            let vote = pred.on_access(&access, local_gap);
            state.pending_idle[pidx] = Some(local_gap);
            Some(vote)
        } else {
            None
        };

        // Local classification.
        if local_gap > be {
            out.local.opportunities += 1;
        }
        let local_verdict = match vote {
            Some(vote) => match vote.delay {
                Some(delay) if delay < local_gap => {
                    if local_gap - delay > be {
                        out.local.record_hit(vote.source);
                        GapVerdict::Hit
                    } else {
                        out.local.record_miss(vote.source);
                        GapVerdict::Miss
                    }
                }
                _ if local_gap > be => {
                    out.local.not_predicted += 1;
                    GapVerdict::NotPredicted
                }
                _ => GapVerdict::Short,
            },
            None if local_gap > be => {
                out.local.not_predicted += 1;
                GapVerdict::NotPredicted
            }
            None => GapVerdict::Short,
        };
        if let Some(vote) = vote {
            if !state.oracle {
                state.global.record_vote(state.pids[pidx], completion, vote);
            }
        }

        // Predictor-side audit context, captured before gap resolution:
        // the deciding process may exit (dropping its predictor) inside
        // the gap.
        let (signature, table_len) = if O::ENABLED {
            match state.preds[pidx].as_ref() {
                Some(pred) => (pred.audit_signature(), pred.audit_table_len()),
                None => (None, None),
            }
        } else {
            (None, None)
        };

        // Resolve the merged gap that follows this access.
        let gap_end = completion + global_gap;
        let shutdown = if state.oracle {
            (global_gap > be).then_some((completion, VoteSource::Primary))
        } else {
            resolve_gap_voting(&mut state, lifecycle, &mut li, completion, gap_end)
        };

        // Global classification and energy. The always-on breakdown is
        // shared by the unmanaged branch and the base-energy term.
        if global_gap > be {
            out.global.opportunities += 1;
        }
        let base_breakdown = GapBreakdown::unmanaged(&config.disk, global_gap);
        let (verdict, managed_breakdown) = match shutdown {
            Some((at, source)) => {
                let off = gap_end - at;
                let verdict = if off > be {
                    out.global.record_hit(source);
                    GapVerdict::Hit
                } else {
                    out.global.record_miss(source);
                    GapVerdict::Miss
                };
                let breakdown = match &window_state {
                    // §7 extension: the wait-window is spent in a
                    // shallow low-power state instead of spinning idle.
                    Some(shallow) => GapBreakdown::managed_with_window_state(
                        &config.disk,
                        global_gap,
                        at - completion,
                        shallow,
                    ),
                    None => GapBreakdown::managed(&config.disk, global_gap, at - completion),
                };
                out.energy.add_gap(global_gap > be, breakdown);
                (verdict, breakdown)
            }
            None => {
                let verdict = if global_gap > be {
                    out.global.not_predicted += 1;
                    GapVerdict::NotPredicted
                } else {
                    GapVerdict::Short
                };
                out.energy.add_gap(global_gap > be, base_breakdown);
                (verdict, base_breakdown)
            }
        };
        out.base_energy.add_gap(global_gap > be, base_breakdown);

        if O::ENABLED {
            observer.on_decision(
                DecisionRecord {
                    run: 0,
                    access: i as u32,
                    at: completion,
                    pid: access.pid,
                    pc: access.pc,
                    signature,
                    table_len,
                    vote_delay: vote.and_then(|v| v.delay),
                    vote_source: vote.map(|v| v.source),
                    local_gap,
                    local_verdict,
                    global_gap,
                    shutdown_at: shutdown.map(|(at, _)| at),
                    shutdown_source: shutdown.map(|(_, source)| source),
                    verdict,
                    energy_delta_j: managed_breakdown.total().0 - base_breakdown.total().0,
                },
                &GapEnergy {
                    long: global_gap > be,
                    busy,
                    managed: managed_breakdown,
                    base: base_breakdown,
                },
            );
        }
    }

    // Remaining lifecycle (exits at/after the last access).
    while li < lifecycle.len() {
        state.apply(lifecycle[li]);
        li += 1;
    }

    // Park predictors whose processes never recorded an exit (traces are
    // not required to close every pid): `on_run_end` restores them to
    // constructed state, so the pool can hand them out as fresh boxes.
    if state.pool_enabled {
        for slot in state.preds.iter_mut() {
            if let Some(mut pred) = slot.take() {
                pred.on_run_end();
                state.pool.push(pred);
            }
        }
    }

    out
}

/// Steps through the lifecycle events inside one idle gap, returning
/// the first instant at which every live process's vote is ready (and
/// the source of the latest vote), or `None` if the disk must keep
/// spinning until the gap ends.
pub(crate) fn resolve_gap_voting(
    state: &mut RunState<'_>,
    lifecycle: &[LifecycleEvent],
    li: &mut usize,
    gap_start: SimTime,
    gap_end: SimTime,
) -> Option<(SimTime, VoteSource)> {
    let mut now = gap_start;
    let mut shutdown = None;
    loop {
        let boundary = if *li < lifecycle.len() && lifecycle[*li].time <= gap_end {
            lifecycle[*li].time
        } else {
            gap_end
        };
        if shutdown.is_none() {
            if let GlobalDecision::ShutdownAt(t, source) = state.global.decision() {
                let at = t.max(now);
                if at < boundary {
                    shutdown = Some((at, source));
                }
            }
        }
        if boundary == gap_end {
            // Consume lifecycle events exactly at the gap end belonging
            // to the gap (exits at run end); forks at the next access's
            // timestamp are handled by the access loop.
            break;
        }
        state.apply(lifecycle[*li]);
        *li += 1;
        // Events that arrived while the disk was still busy (before the
        // gap started) must not pull `now` backwards.
        now = now.max(boundary);
    }
    shutdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_trace::{TraceRun, TraceRunBuilder};
    use pcap_types::{Fd, FileId, IoKind, Pc};

    /// One process, fresh 1-page reads at the given seconds, exit at
    /// `end`.
    fn run_with_gaps(times: &[f64], end: f64) -> TraceRun {
        let mut b = TraceRunBuilder::new(Pid(1));
        for (i, &t) in times.iter().enumerate() {
            b.io(
                SimTime::from_secs_f64(t),
                Pid(1),
                Pc(0x100),
                IoKind::Read,
                Fd(3),
                FileId(1),
                (i as u64) * 4096,
                4096,
            );
        }
        b.exit(SimTime::from_secs_f64(end), Pid(1));
        b.finish().unwrap()
    }

    fn evaluate(run: TraceRun, kind: PowerManagerKind) -> RunOutcome {
        let config = SimConfig::paper();
        let streams = RunStreams::build(&run, &config);
        let mut manager = kind.manager(&config);
        simulate_run(&streams, &config, &mut manager)
    }

    #[test]
    fn oracle_hits_every_opportunity() {
        // Gaps ≈ 1 s, 20 s, 1 s, 40 s (terminal).
        let run = run_with_gaps(&[1.0, 2.0, 22.0, 23.0], 63.0);
        let out = evaluate(run, PowerManagerKind::Oracle);
        assert_eq!(out.global.opportunities, 2);
        assert_eq!(out.global.hits(), 2);
        assert_eq!(out.global.misses(), 0);
        assert_eq!(out.global.not_predicted, 0);
        assert_eq!(out.local.hits(), 2);
    }

    #[test]
    fn timeout_covers_only_long_gaps() {
        // Gaps ≈ 20 s (hit: off ≈ 10 s), 8 s (not predicted: timer
        // never fires), 12 s terminal (miss: off ≈ 2 s < breakeven).
        let run = run_with_gaps(&[1.0, 21.0, 29.0], 41.0);
        let out = evaluate(run, PowerManagerKind::Timeout);
        assert_eq!(out.global.opportunities, 3);
        assert_eq!(out.global.hits(), 1);
        assert_eq!(out.global.misses(), 1);
        assert_eq!(out.global.not_predicted, 1);
    }

    #[test]
    fn pcap_learns_across_executions() {
        let config = SimConfig::paper();
        let mut manager = PowerManagerKind::PCAP.manager(&config);
        let execute = |manager: &mut Manager| {
            let run = run_with_gaps(&[1.0, 1.2, 1.4], 31.4);
            let streams = RunStreams::build(&run, &config);
            let out = simulate_run(&streams, &config, manager);
            manager.on_run_end();
            out
        };
        let first = execute(&mut manager);
        let second = execute(&mut manager);
        // First execution: the 30 s terminal gap trains; the backup
        // timeout makes the shutdown.
        assert_eq!(first.global.hits(), 1);
        assert_eq!(first.global.hit_backup, 1);
        // Second execution: the learned path predicts immediately.
        assert_eq!(second.global.hit_primary, 1);
    }

    #[test]
    fn energy_breakdown_accounts_every_gap() {
        let run = run_with_gaps(&[1.0, 2.0, 22.0], 62.0);
        let out = evaluate(run, PowerManagerKind::Timeout);
        // Base energy has no power cycles and no saving.
        assert_eq!(out.base_energy.power_cycle.0, 0.0);
        assert!(out.energy.total().0 < out.base_energy.total().0);
        // Busy identical in both.
        assert_eq!(out.energy.busy, out.base_energy.busy);
    }

    #[test]
    fn fork_during_gap_blocks_shutdown() {
        // Root reads at 1 s then goes idle until 60 s. A helper forks at
        // 3 s and never performs I/O: its initial backup vote anchors at
        // 3 s, so the (TP) shutdown slides from 11 s to 13 s.
        let mut b = TraceRunBuilder::new(Pid(1));
        b.io(
            SimTime::from_secs(1),
            Pid(1),
            Pc(0x1),
            IoKind::Read,
            Fd(3),
            FileId(1),
            0,
            4096,
        );
        b.fork(SimTime::from_secs(3), Pid(1), Pid(2));
        b.exit(SimTime::from_secs(59), Pid(2));
        b.exit(SimTime::from_secs(60), Pid(1));
        let run = b.finish().unwrap();
        let config = SimConfig::paper();
        let streams = RunStreams::build(&run, &config);
        let mut manager = PowerManagerKind::Timeout.manager(&config);
        let out = simulate_run(&streams, &config, &mut manager);
        assert_eq!(out.global.hits(), 1);
        // Off interval = 59 s − 13 s = 46 s; energy must reflect a
        // 13−1−service ≈ 12 s spinning prefix. Compare with a no-fork
        // run: its shutdown at 11 s spins ~2 s less.
        let no_fork = evaluate(run_with_gaps(&[1.0], 60.0), PowerManagerKind::Timeout);
        assert!(out.energy.idle_long.0 > no_fork.energy.idle_long.0 + 1.0);
    }

    #[test]
    fn exit_during_gap_unblocks_shutdown() {
        // A helper performs the last I/O then exits mid-gap; after its
        // exit only the root's vote matters.
        let mut b = TraceRunBuilder::new(Pid(1));
        b.fork(SimTime::from_millis(100), Pid(1), Pid(2));
        b.io(
            SimTime::from_secs(1),
            Pid(1),
            Pc(0x1),
            IoKind::Read,
            Fd(3),
            FileId(1),
            0,
            4096,
        );
        b.io(
            SimTime::from_secs(2),
            Pid(2),
            Pc(0x2),
            IoKind::Read,
            Fd(3),
            FileId(1),
            4096,
            4096,
        );
        // Helper exits at 5 s; root stays idle until 60 s.
        b.exit(SimTime::from_secs(5), Pid(2));
        b.exit(SimTime::from_secs(60), Pid(1));
        let run = b.finish().unwrap();
        let config = SimConfig::paper();
        let streams = RunStreams::build(&run, &config);
        let mut manager = PowerManagerKind::Timeout.manager(&config);
        let out = simulate_run(&streams, &config, &mut manager);
        // Shutdown at max(root: 1 s + 10 s, helper: gone) = 11 s.
        assert_eq!(out.global.hits(), 1);
    }

    #[test]
    fn evaluate_app_aggregates_runs() {
        let mut trace = ApplicationTrace::new("test");
        for _ in 0..3 {
            trace.runs.push(run_with_gaps(&[1.0, 1.2], 31.0));
        }
        let report = evaluate_app(&trace, &SimConfig::paper(), PowerManagerKind::PCAP);
        assert_eq!(&*report.app, "test");
        assert_eq!(report.manager, "PCAP");
        assert_eq!(report.global.opportunities, 3);
        // Run 1 trains (backup hit), runs 2–3 predict (primary hits).
        assert_eq!(report.global.hit_backup, 1);
        assert_eq!(report.global.hit_primary, 2);
        assert!(report.table_entries.unwrap() >= 1);
        assert!(report.savings() > 0.0);
    }

    #[test]
    fn report_app_shares_trace_allocation() {
        let mut trace = ApplicationTrace::new("shared");
        trace.runs.push(run_with_gaps(&[1.0], 31.0));
        let report = evaluate_app(&trace, &SimConfig::paper(), PowerManagerKind::Timeout);
        assert!(std::sync::Arc::ptr_eq(&trace.app, &report.app));
    }

    #[test]
    fn gap_log_matches_counts() {
        let run = run_with_gaps(&[1.0, 21.0, 29.0], 41.0);
        let config = SimConfig::paper();
        let streams = RunStreams::build(&run, &config);
        let mut manager = PowerManagerKind::Timeout.manager(&config);
        let mut log = Vec::new();
        let out = simulate_run_logged(&streams, &config, &mut manager, &mut log);
        assert_eq!(log.len(), streams.accesses.len());
        let hits = log.iter().filter(|g| g.verdict == GapVerdict::Hit).count();
        let misses = log.iter().filter(|g| g.verdict == GapVerdict::Miss).count();
        let np = log
            .iter()
            .filter(|g| g.verdict == GapVerdict::NotPredicted)
            .count();
        assert_eq!(hits as u64, out.global.hits());
        assert_eq!(misses as u64, out.global.misses());
        assert_eq!(np as u64, out.global.not_predicted);
        // The hit gap carries its shutdown instant and source.
        let hit = log.iter().find(|g| g.verdict == GapVerdict::Hit).unwrap();
        let (at, source) = hit.shutdown.expect("hit has a shutdown");
        assert_eq!(source, VoteSource::Primary);
        assert!(at > hit.start);
    }

    #[test]
    fn kernel_writeback_after_helper_exit_routes_to_root() {
        // A helper dirties a page and exits; the flush daemon writes it
        // back ~30 s later, attributed to the (dead) helper pid. The
        // simulator must route that access to the application root
        // rather than panic or drop it.
        let mut b = pcap_trace::TraceRunBuilder::new(Pid(1));
        b.fork(SimTime::from_millis(10), Pid(1), Pid(2));
        b.io(
            SimTime::from_secs(1),
            Pid(2),
            Pc(0x2),
            IoKind::Write,
            Fd(4),
            FileId(9),
            0,
            4096,
        );
        b.exit(SimTime::from_secs(2), Pid(2));
        // Root stays alive; its read at 120 s advances the cache clock
        // past the write-back expiry.
        b.io(
            SimTime::from_secs(120),
            Pid(1),
            Pc(0x1),
            IoKind::Read,
            Fd(3),
            FileId(1),
            0,
            4096,
        );
        b.exit(SimTime::from_secs(150), Pid(1));
        let run = b.finish().unwrap();
        let config = SimConfig::paper();
        let streams = RunStreams::build(&run, &config);
        // The write-back exists and lands after the helper's exit.
        let flush = streams
            .accesses
            .iter()
            .find(|a| a.is_kernel())
            .expect("flush access present");
        assert!(flush.time > SimTime::from_secs(2));
        assert_eq!(flush.pid, Pid(2), "attributed to the dirtier");
        // And the simulation completes with consistent counts.
        let mut manager = PowerManagerKind::PCAP.manager(&config);
        let out = simulate_run(&streams, &config, &mut manager);
        assert!(out.global.opportunities >= 2);
        assert!(out.base_energy.total().0 > 0.0);
    }

    #[test]
    fn multistate_pcap_saves_at_least_as_much_as_pcap() {
        let mut trace = ApplicationTrace::new("ms");
        for _ in 0..4 {
            trace.runs.push(run_with_gaps(&[1.0, 1.2, 1.4], 61.4));
        }
        let config = SimConfig::paper();
        let plain = evaluate_app(&trace, &config, PowerManagerKind::PCAP);
        let multi = evaluate_app(&trace, &config, PowerManagerKind::MultiStatePcap);
        // Identical predictions (same PCAP underneath)...
        assert_eq!(plain.global, multi.global);
        // ...but the shallow wait-window state saves extra energy.
        assert!(
            multi.energy.total().0 < plain.energy.total().0,
            "{} vs {}",
            multi.energy.total(),
            plain.energy.total()
        );
    }

    #[test]
    fn wait_window_filters_subwindow_gaps() {
        // A trained PCAP whose path recurs followed by an immediate
        // access (0.5 s < wait-window): the prediction is cancelled, no
        // miss recorded.
        let config = SimConfig::paper();
        let mut manager = PowerManagerKind::PCAP.manager(&config);
        // Train: single access then long gap.
        let train = run_with_gaps(&[1.0], 31.0);
        let streams = RunStreams::build(&train, &config);
        simulate_run(&streams, &config, &mut manager);
        manager.on_run_end();
        // Replay: the same PC, but the next access comes 0.5 s later.
        let replay = run_with_gaps(&[1.0, 1.5], 3.0);
        let streams = RunStreams::build(&replay, &config);
        let out = simulate_run(&streams, &config, &mut manager);
        assert_eq!(out.global.misses(), 0, "wait-window must filter");
    }
}
