//! Prepare-once trace pipeline.
//!
//! Everything the simulator consumes per run — cache-filtered
//! accesses, serialized completions, idle gaps, lifetimes, lifecycle —
//! depends only on `(trace, cache config, disk config)`, never on the
//! power manager under test. [`PreparedTrace`] computes those
//! [`RunStreams`] exactly once per trace, and [`evaluate_prepared`]
//! borrows them immutably, so a 10-manager comparison grid pays for
//! preparation once instead of ten times. Results are byte-identical
//! to the legacy per-manager path ([`evaluate_app`](crate::evaluate_app) is now a thin
//! wrapper that prepares and evaluates); `tests/determinism.rs` pins
//! that equivalence.

use crate::audit::{evaluate_prepared_observed, NullObserver};
use crate::engine::AppReport;
use crate::factory::PowerManagerKind;
use crate::streams::RunStreams;
use crate::sweep::SweepRunner;
use crate::SimConfig;
use pcap_cache::CacheConfig;
use pcap_disk::DiskParams;
use pcap_trace::ApplicationTrace;
use std::sync::Arc;

/// The manager-independent, shareable view of one application trace:
/// every run's [`RunStreams`], built once.
///
/// The builder records the cache and disk parameters it prepared
/// under; [`evaluate_prepared`] asserts the evaluation config matches
/// them, so stream-relevant config changes cannot silently reuse stale
/// streams (predictor-only knobs — timeouts, table sizes, wait
/// windows — may differ freely).
#[derive(Debug)]
pub struct PreparedTrace {
    app: Arc<str>,
    streams: Vec<RunStreams>,
    total_ios: usize,
    cache: CacheConfig,
    disk: DiskParams,
}

impl PreparedTrace {
    /// Prepares every run of `trace` serially.
    pub fn build(trace: &ApplicationTrace, config: &SimConfig) -> PreparedTrace {
        let streams = trace
            .runs
            .iter()
            .map(|run| RunStreams::build(run, config))
            .collect();
        PreparedTrace::assemble(trace, config, streams)
    }

    /// Prepares every run of `trace`, fanning the per-run builds out on
    /// `runner`. The result is identical to [`build`](Self::build) —
    /// run order is preserved by the runner's canonical-order merge.
    pub fn build_par(
        trace: &ApplicationTrace,
        config: &SimConfig,
        runner: &SweepRunner,
    ) -> PreparedTrace {
        let streams = runner.run(&trace.runs, |_, run| RunStreams::build(run, config));
        PreparedTrace::assemble(trace, config, streams)
    }

    /// [`build`](Self::build) with a [`pcap_obs::PipelineObserver`]
    /// attached: the whole preparation runs inside a `build:{app}`
    /// span (distinct from the runner-level `prepare:{app}` task span
    /// that may wrap it, mirroring the `cell:`/`eval:` split), its
    /// duration feeds the `prepare_us` histogram, and the number of
    /// prepared runs feeds the `prepared_runs` counter. With
    /// [`pcap_obs::NullPipeline`] this is exactly
    /// [`build`](Self::build).
    pub fn build_traced<P: pcap_obs::PipelineObserver>(
        trace: &ApplicationTrace,
        config: &SimConfig,
        pipeline: &P,
    ) -> PreparedTrace {
        if P::ENABLED {
            let name = format!("build:{}", trace.app);
            let started = std::time::Instant::now();
            pipeline.span_begin(&name);
            let prepared = PreparedTrace::build(trace, config);
            pipeline.span_end(&name);
            pipeline.observe_us("prepare_us", started.elapsed().as_micros() as u64);
            pipeline.counter_add("prepared_runs", prepared.len() as u64);
            return prepared;
        }
        PreparedTrace::build(trace, config)
    }

    fn assemble(
        trace: &ApplicationTrace,
        config: &SimConfig,
        streams: Vec<RunStreams>,
    ) -> PreparedTrace {
        PreparedTrace {
            app: Arc::clone(&trace.app),
            streams,
            total_ios: trace.total_ios(),
            cache: config.cache.clone(),
            disk: config.disk.clone(),
        }
    }

    /// The application name (shared with the source trace).
    pub fn app(&self) -> &Arc<str> {
        &self.app
    }

    /// The prepared per-run streams, in run order.
    pub fn streams(&self) -> &[RunStreams] {
        &self.streams
    }

    /// Traced I/O operations of the source trace (pre-cache; a
    /// raw-trace property recorded at build time).
    pub fn total_ios(&self) -> usize {
        self.total_ios
    }

    /// Number of prepared runs.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the trace has no runs.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Whether `config` produces the same streams this trace was
    /// prepared under (cache and disk parameters match; predictor
    /// parameters are irrelevant to streams).
    pub fn matches(&self, config: &SimConfig) -> bool {
        self.cache == config.cache && self.disk == config.disk
    }
}

/// Evaluates one power manager against an already-prepared trace —
/// the shared-streams core of [`evaluate_app`](crate::evaluate_app).
///
/// `config` may differ from the preparation config in predictor-only
/// parameters (that is the ablation-sweep use case), but must agree on
/// the stream-relevant cache and disk parameters.
///
/// # Panics
///
/// Panics if `config` disagrees with the preparation config on cache
/// or disk parameters (the streams would be stale).
pub fn evaluate_prepared(
    prepared: &PreparedTrace,
    config: &SimConfig,
    kind: PowerManagerKind,
) -> AppReport {
    evaluate_prepared_observed(prepared, config, kind, &mut NullObserver)
}

/// [`evaluate_prepared`] with a [`pcap_obs::PipelineObserver`] attached
/// (no decision-level audit): the profiling path of `pcap profile`.
///
/// # Panics
///
/// Panics if `config` disagrees with the preparation config on cache
/// or disk parameters (the streams would be stale).
pub fn evaluate_prepared_traced<P: pcap_obs::PipelineObserver>(
    prepared: &PreparedTrace,
    config: &SimConfig,
    kind: PowerManagerKind,
    pipeline: &P,
) -> AppReport {
    crate::audit::evaluate_prepared_instrumented(
        prepared,
        config,
        kind,
        &mut NullObserver,
        pipeline,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::evaluate_app;
    use pcap_trace::TraceRunBuilder;
    use pcap_types::{Fd, FileId, IoKind, Pc, Pid, SimTime};

    fn little_trace() -> ApplicationTrace {
        let mut trace = ApplicationTrace::new("little");
        for r in 0..3u64 {
            let mut b = TraceRunBuilder::new(Pid(1));
            for i in 0..3u64 {
                b.io(
                    SimTime::from_millis(1000 + r * 100 + i * 200),
                    Pid(1),
                    Pc(0x100 + i as u32),
                    IoKind::Read,
                    Fd(3),
                    FileId(1),
                    i * 4096,
                    4096,
                );
            }
            b.exit(SimTime::from_secs(40 + r), Pid(1));
            trace.runs.push(b.finish().unwrap());
        }
        trace
    }

    #[test]
    fn prepared_matches_legacy_path() {
        let trace = little_trace();
        let config = SimConfig::paper();
        let prepared = PreparedTrace::build(&trace, &config);
        assert_eq!(prepared.len(), 3);
        for kind in [
            PowerManagerKind::Timeout,
            PowerManagerKind::PCAP,
            PowerManagerKind::Oracle,
        ] {
            let legacy = evaluate_app(&trace, &config, kind);
            let shared = evaluate_prepared(&prepared, &config, kind);
            assert_eq!(legacy, shared);
        }
    }

    #[test]
    fn parallel_build_is_identical() {
        let trace = little_trace();
        let config = SimConfig::paper();
        let serial = PreparedTrace::build(&trace, &config);
        let parallel = PreparedTrace::build_par(&trace, &config, &SweepRunner::new(4));
        for (a, b) in serial.streams().iter().zip(parallel.streams()) {
            assert_eq!(a.accesses, b.accesses);
            assert_eq!(a.completions, b.completions);
            assert_eq!(a.local_gaps, b.local_gaps);
            assert_eq!(a.global_gaps, b.global_gaps);
        }
    }

    #[test]
    fn predictor_only_config_changes_may_share_streams() {
        let trace = little_trace();
        let config = SimConfig::paper();
        let prepared = PreparedTrace::build(&trace, &config);
        let mut tweaked = config.clone();
        tweaked.timeout = tweaked.timeout * 2;
        assert!(prepared.matches(&tweaked));
        // Must not panic, and must differ from the untweaked result.
        let a = evaluate_prepared(&prepared, &config, PowerManagerKind::Timeout);
        let b = evaluate_prepared(&prepared, &tweaked, PowerManagerKind::Timeout);
        assert_eq!(a.global.opportunities, b.global.opportunities);
    }

    #[test]
    #[should_panic(expected = "cache/disk")]
    fn stream_relevant_config_change_panics() {
        let trace = little_trace();
        let config = SimConfig::paper();
        let prepared = PreparedTrace::build(&trace, &config);
        let mut changed = config.clone();
        changed.cache.capacity_bytes *= 2;
        evaluate_prepared(&prepared, &changed, PowerManagerKind::Timeout);
    }
}
