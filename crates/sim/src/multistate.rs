//! The multi-state power-ladder simulation engine — the §7 extension
//! taken from a single wait-window substitution to a full descent
//! through [`MultiStateParams::states`].
//!
//! The loop is structurally identical to
//! [`simulate_run_observed`](crate::simulate_run_observed): same
//! lifecycle stepping, same per-process predictors and global voting,
//! same gap classification against the two-state breakeven (so the
//! hit/miss grids stay comparable across engines). Only the *energy*
//! side changes: instead of the closed-form two-state
//! `GapBreakdown::managed`, each gap is charged by a
//! [`LadderPolicy`]-planned descent via
//! [`descent_energy`](pcap_disk::descent_energy) — per-state residency
//! plus every entry paid so far and the deepest state's exit, including
//! wakeups that interrupt the descent partway down.
//!
//! By construction, a single-state ladder built with
//! [`MultiStateParams::from_disk`] driven by
//! [`PredictiveJump`](pcap_disk::PredictiveJump) replays the two-state
//! engine's float operations in the same order, so the resulting
//! [`AppReport`] is **byte-identical** to
//! [`evaluate_prepared`](crate::evaluate_prepared)'s — the regression
//! anchor that lets the ladder engine evolve without silently drifting
//! from the validated two-state model.

use crate::audit::{
    AuditCollector, AuditOutcome, DecisionObserver, DecisionRecord, GapEnergy, NullObserver,
};
use crate::engine::{
    resolve_gap_voting, AppReport, EngineScratch, GapVerdict, RunOutcome, RunState,
};
use crate::factory::{Manager, PowerManagerKind};
use crate::metrics::{EnergyBreakdown, PredictionCounts};
use crate::prepared::PreparedTrace;
use crate::streams::RunStreams;
use crate::SimConfig;
use pcap_core::{ladder_target, VoteSource};
use pcap_disk::{
    descent_energy, DescentStep, GapBreakdown, GapContext, LadderPolicy, MultiStateParams,
};
use pcap_types::SimDuration;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Where the ladder descents bottomed out, summed over gaps: the
/// observable behaviour of a policy beyond its energy bill.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LadderStats {
    /// Gaps the disk spent entirely spinning idle (no step fired).
    pub idle_gaps: u64,
    /// Gaps whose descent bottomed out in each ladder state,
    /// index-aligned with [`MultiStateParams::states`].
    pub bottom_counts: Vec<u64>,
}

impl LadderStats {
    /// Zeroed stats for a ladder with `states` states.
    pub fn new(states: usize) -> LadderStats {
        LadderStats {
            idle_gaps: 0,
            bottom_counts: vec![0; states],
        }
    }

    /// Records one gap's bottom-out state (`None` = stayed idle).
    pub fn record(&mut self, bottom: Option<usize>) {
        match bottom {
            Some(state) => self.bottom_counts[state] += 1,
            None => self.idle_gaps += 1,
        }
    }

    /// Total gaps observed.
    pub fn total_gaps(&self) -> u64 {
        self.idle_gaps + self.bottom_counts.iter().sum::<u64>()
    }
}

/// Reusable per-run state for the multi-state engine: the regular
/// [`EngineScratch`] plus the descent-plan buffer the policy fills per
/// gap.
#[derive(Default)]
pub struct MultiStateScratch {
    engine: EngineScratch,
    plan: Vec<DescentStep>,
}

impl MultiStateScratch {
    /// An empty scratch; buffers grow to the run's needs.
    pub fn new() -> MultiStateScratch {
        MultiStateScratch::default()
    }
}

/// Simulates one execution through the multi-state ladder engine,
/// delivering every decision to `observer` (followed by
/// [`DecisionObserver::on_ladder_bottom`] for the same gap).
///
/// `breakevens` must be `ladder.breakevens()`, precomputed once by the
/// caller so the per-gap path stays allocation-free. Gap verdicts and
/// prediction counts are classified against the *two-state* breakeven
/// exactly as in [`simulate_run_observed`](crate::simulate_run_observed)
/// — prediction quality is a property of the predictor, not the ladder
/// — while the energy ledger follows the policy's descent (which, for
/// [`SkiRental`](pcap_disk::SkiRental), may act on gaps the predictor
/// declined).
#[allow(clippy::too_many_arguments)]
pub fn simulate_run_multistate<P: LadderPolicy + ?Sized, O: DecisionObserver>(
    streams: &RunStreams,
    config: &SimConfig,
    manager: &mut Manager,
    ladder: &MultiStateParams,
    breakevens: &[SimDuration],
    policy: &P,
    scratch: &mut MultiStateScratch,
    stats: &mut LadderStats,
    observer: &mut O,
) -> RunOutcome {
    let be = config.disk.breakeven_time();
    let window_state = manager.window_state();
    let mut out = RunOutcome::default();

    scratch.engine.reset(streams.pid_count());
    let mut state = RunState {
        oracle: manager.is_oracle(),
        manager,
        global: &mut scratch.engine.global,
        preds: &mut scratch.engine.preds,
        pending_idle: &mut scratch.engine.pending_idle,
        pool: &mut scratch.engine.pool,
        pool_enabled: scratch.engine.pool_enabled,
        pids: streams.pids(),
    };

    let lifecycle = streams.lifecycle();
    let mut li = 0usize;

    let n = streams.accesses.len();
    for i in 0..n {
        let access = streams.accesses[i];
        let completion = streams.completions[i];
        let local_gap = streams.local_gaps[i];
        let global_gap = streams.global_gaps[i];

        while li < lifecycle.len() && lifecycle[li].time <= access.time {
            state.apply(lifecycle[li]);
            li += 1;
        }

        let busy = config.disk.busy_power * config.disk.service_time(access.pages);
        out.energy.busy += busy;
        out.base_energy.busy += busy;

        let apidx = streams.access_pid_index(i);
        let pidx = if state.preds[apidx].is_some() {
            apidx
        } else {
            0
        };
        let vote = if let Some(pred) = state.preds[pidx].as_mut() {
            if let Some(gap) = state.pending_idle[pidx].take() {
                pred.on_idle_end(gap);
            }
            let vote = pred.on_access(&access, local_gap);
            state.pending_idle[pidx] = Some(local_gap);
            Some(vote)
        } else {
            None
        };

        if local_gap > be {
            out.local.opportunities += 1;
        }
        let local_verdict = match vote {
            Some(vote) => match vote.delay {
                Some(delay) if delay < local_gap => {
                    if local_gap - delay > be {
                        out.local.record_hit(vote.source);
                        GapVerdict::Hit
                    } else {
                        out.local.record_miss(vote.source);
                        GapVerdict::Miss
                    }
                }
                _ if local_gap > be => {
                    out.local.not_predicted += 1;
                    GapVerdict::NotPredicted
                }
                _ => GapVerdict::Short,
            },
            None if local_gap > be => {
                out.local.not_predicted += 1;
                GapVerdict::NotPredicted
            }
            None => GapVerdict::Short,
        };
        if let Some(vote) = vote {
            if !state.oracle {
                state.global.record_vote(state.pids[pidx], completion, vote);
            }
        }

        let (signature, table_len) = if O::ENABLED {
            match state.preds[pidx].as_ref() {
                Some(pred) => (pred.audit_signature(), pred.audit_table_len()),
                None => (None, None),
            }
        } else {
            (None, None)
        };

        let gap_end = completion + global_gap;
        let shutdown = if state.oracle {
            (global_gap > be).then_some((completion, VoteSource::Primary))
        } else {
            resolve_gap_voting(&mut state, lifecycle, &mut li, completion, gap_end)
        };

        if global_gap > be {
            out.global.opportunities += 1;
        }
        let base_breakdown = GapBreakdown::unmanaged(&config.disk, global_gap);
        // The verdict tracks the *voted* shutdown, exactly as in the
        // two-state engine; the energy tracks the policy's descent.
        let verdict = match shutdown {
            Some((at, source)) => {
                let off = gap_end - at;
                if off > be {
                    out.global.record_hit(source);
                    GapVerdict::Hit
                } else {
                    out.global.record_miss(source);
                    GapVerdict::Miss
                }
            }
            None if global_gap > be => {
                out.global.not_predicted += 1;
                GapVerdict::NotPredicted
            }
            None => GapVerdict::Short,
        };

        let ctx = GapContext {
            shutdown_at: shutdown.map(|(at, _)| at - completion),
            target: match shutdown {
                Some((at, source)) => ladder_target(source, at - completion, breakevens),
                None => 0,
            },
            gap: global_gap,
        };
        policy.plan(ladder, &ctx, &mut scratch.plan);
        let (descent, bottom) = descent_energy(ladder, &scratch.plan, global_gap);
        // §7 wait-window substitution, mirroring the two-state engine:
        // the spin-idle prefix before the first step is spent in the
        // manager's shallow window state when it has one.
        let managed_breakdown = match (&window_state, scratch.plan.first()) {
            (Some(shallow), Some(first)) if first.at < global_gap => {
                descent.substitute_window(shallow, first.at)
            }
            _ => descent,
        };
        out.energy.add_gap(global_gap > be, managed_breakdown);
        out.base_energy.add_gap(global_gap > be, base_breakdown);
        stats.record(bottom);

        if O::ENABLED {
            observer.on_decision(
                DecisionRecord {
                    run: 0,
                    access: i as u32,
                    at: completion,
                    pid: access.pid,
                    pc: access.pc,
                    signature,
                    table_len,
                    vote_delay: vote.and_then(|v| v.delay),
                    vote_source: vote.map(|v| v.source),
                    local_gap,
                    local_verdict,
                    global_gap,
                    shutdown_at: shutdown.map(|(at, _)| at),
                    shutdown_source: shutdown.map(|(_, source)| source),
                    verdict,
                    energy_delta_j: managed_breakdown.total().0 - base_breakdown.total().0,
                },
                &GapEnergy {
                    long: global_gap > be,
                    busy,
                    managed: managed_breakdown,
                    base: base_breakdown,
                },
            );
            observer.on_ladder_bottom(bottom);
        }
    }

    while li < lifecycle.len() {
        state.apply(lifecycle[li]);
        li += 1;
    }

    out
}

/// One application × one manager × one ladder policy, evaluated through
/// the multi-state engine.
#[derive(Debug, Clone)]
pub struct MultiStateOutcome {
    /// The aggregate report (same shape as the two-state engine's, so
    /// the two are directly — and for single-state ladders, bitwise —
    /// comparable).
    pub report: AppReport,
    /// Where the descents bottomed out, summed over all gaps and runs.
    pub ladder_stats: LadderStats,
}

/// [`evaluate_prepared`](crate::evaluate_prepared) through the
/// multi-state ladder engine with an attached observer.
///
/// # Panics
///
/// Panics if the ladder fails [`MultiStateParams::validate`] or if
/// `config` disagrees with the preparation config (stale streams).
pub fn evaluate_prepared_multistate_observed<O: DecisionObserver>(
    prepared: &PreparedTrace,
    config: &SimConfig,
    kind: PowerManagerKind,
    ladder: &MultiStateParams,
    policy: &dyn LadderPolicy,
    observer: &mut O,
) -> MultiStateOutcome {
    assert!(
        prepared.matches(config),
        "evaluate_prepared_multistate: config changes cache/disk parameters; rebuild the PreparedTrace"
    );
    ladder
        .validate()
        .expect("evaluate_prepared_multistate: invalid ladder");
    let breakevens = ladder.breakevens();
    let mut manager = kind.manager(config);
    let mut report = AppReport {
        app: Arc::clone(prepared.app()),
        manager: kind.label(),
        local: PredictionCounts::default(),
        global: PredictionCounts::default(),
        energy: EnergyBreakdown::default(),
        base_energy: EnergyBreakdown::default(),
        table_entries: None,
        table_aliases: None,
    };
    let mut stats = LadderStats::new(ladder.states.len());
    let mut scratch = MultiStateScratch::new();
    for (run, streams) in prepared.streams().iter().enumerate() {
        observer.on_run_start(run as u32);
        let outcome = simulate_run_multistate(
            streams,
            config,
            &mut manager,
            ladder,
            &breakevens,
            policy,
            &mut scratch,
            &mut stats,
            observer,
        );
        report.local += outcome.local;
        report.global += outcome.global;
        report.energy += outcome.energy;
        report.base_energy += outcome.base_energy;
        manager.on_run_end();
    }
    report.table_entries = manager.table_entries();
    report.table_aliases = manager.table_aliases();
    MultiStateOutcome {
        report,
        ladder_stats: stats,
    }
}

/// Evaluates one manager × ladder × policy over a prepared trace — the
/// multi-state analogue of [`evaluate_prepared`](crate::evaluate_prepared).
pub fn evaluate_prepared_multistate(
    prepared: &PreparedTrace,
    config: &SimConfig,
    kind: PowerManagerKind,
    ladder: &MultiStateParams,
    policy: &dyn LadderPolicy,
) -> MultiStateOutcome {
    evaluate_prepared_multistate_observed(prepared, config, kind, ladder, policy, &mut NullObserver)
}

/// [`evaluate_prepared_multistate`] with a
/// [`pcap_obs::PipelineObserver`] attached: the evaluation runs inside
/// an `eval_ms:{app}×{manager}` span (the `eval_ms` stage keeps
/// multi-state evaluations distinguishable from two-state `eval` spans
/// in stage summaries), with the same `eval_us`/`runs` registry
/// updates as the two-state path.
///
/// # Panics
///
/// Panics if the ladder fails [`MultiStateParams::validate`] or if
/// `config` disagrees with the preparation config (stale streams).
pub fn evaluate_prepared_multistate_traced<P: pcap_obs::PipelineObserver>(
    prepared: &PreparedTrace,
    config: &SimConfig,
    kind: PowerManagerKind,
    ladder: &MultiStateParams,
    policy: &dyn LadderPolicy,
    pipeline: &P,
) -> MultiStateOutcome {
    if P::ENABLED {
        let name = format!("eval_ms:{}×{}", prepared.app(), kind.label());
        let started = std::time::Instant::now();
        pipeline.span_begin(&name);
        let outcome = evaluate_prepared_multistate(prepared, config, kind, ladder, policy);
        pipeline.span_end(&name);
        pipeline.observe_us("eval_us", started.elapsed().as_micros() as u64);
        pipeline.counter_add("runs", prepared.len() as u64);
        return outcome;
    }
    evaluate_prepared_multistate(prepared, config, kind, ladder, policy)
}

/// Audits one manager × ladder × policy: the full decision stream plus
/// per-decision ladder bottom-outs
/// ([`AuditOutcome::ladder_bottoms`]), alongside the aggregate stats.
pub fn audit_prepared_multistate(
    prepared: &PreparedTrace,
    config: &SimConfig,
    kind: PowerManagerKind,
    ladder: &MultiStateParams,
    policy: &dyn LadderPolicy,
) -> (AuditOutcome, LadderStats) {
    let mut collector = AuditCollector::new();
    let outcome = evaluate_prepared_multistate_observed(
        prepared,
        config,
        kind,
        ladder,
        policy,
        &mut collector,
    );
    let (records, metrics, ladder_bottoms, audit_energy) = collector.finish();
    (
        AuditOutcome {
            report: outcome.report,
            records,
            metrics,
            ladder_bottoms,
            audit_energy,
        },
        outcome.ladder_stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::evaluate_prepared;
    use pcap_disk::{lambda_bounds, LambdaLadder, OracleLadder, PredictiveJump, SkiRental};
    use pcap_trace::{ApplicationTrace, TraceRunBuilder};
    use pcap_types::{Fd, FileId, IoKind, Pc, Pid, SimTime};
    use pcap_workload::NoisyVotes;

    fn trace_with_gaps(runs: usize) -> ApplicationTrace {
        let mut trace = ApplicationTrace::new("ms-test");
        for r in 0..runs {
            let mut b = TraceRunBuilder::new(Pid(1));
            for (i, t) in [1.0, 1.2, 21.2, 22.0, 52.0].iter().enumerate() {
                b.io(
                    SimTime::from_secs_f64(t + r as f64 * 0.01),
                    Pid(1),
                    Pc(0x100 + (i as u32 % 3) * 0x10),
                    IoKind::Read,
                    Fd(3),
                    FileId(1),
                    (i as u64) * 4096,
                    4096,
                );
            }
            b.exit(SimTime::from_secs_f64(92.0), Pid(1));
            trace.runs.push(b.finish().unwrap());
        }
        trace
    }

    #[test]
    fn single_state_ladder_is_bitwise_identical_to_the_two_state_engine() {
        let config = SimConfig::paper();
        let trace = trace_with_gaps(3);
        let prepared = PreparedTrace::build(&trace, &config);
        let ladder = MultiStateParams::from_disk(&config.disk);
        for kind in [
            PowerManagerKind::Timeout,
            PowerManagerKind::Oracle,
            PowerManagerKind::PCAP,
            PowerManagerKind::LT,
            PowerManagerKind::MultiStatePcap,
        ] {
            let legacy = evaluate_prepared(&prepared, &config, kind);
            let multi =
                evaluate_prepared_multistate(&prepared, &config, kind, &ladder, &PredictiveJump);
            let a = serde_json::to_string(&legacy).unwrap();
            let b = serde_json::to_string(&multi.report).unwrap();
            assert_eq!(a, b, "kind {kind:?} diverged");
        }
    }

    #[test]
    fn ladder_stats_account_every_gap() {
        let config = SimConfig::paper();
        let trace = trace_with_gaps(2);
        let prepared = PreparedTrace::build(&trace, &config);
        let ladder = MultiStateParams::mobile_ata();
        let ski = SkiRental::new(&ladder);
        let out =
            evaluate_prepared_multistate(&prepared, &config, PowerManagerKind::PCAP, &ladder, &ski);
        let accesses: usize = prepared.streams().iter().map(|s| s.accesses.len()).sum();
        assert_eq!(out.ladder_stats.total_gaps(), accesses as u64);
        // The 20 s and 30 s gaps descend past the first rung.
        assert!(out.ladder_stats.bottom_counts.iter().sum::<u64>() > 0);
    }

    #[test]
    fn lambda_one_is_bitwise_ski_rental_through_the_engine() {
        let config = SimConfig::paper();
        let trace = trace_with_gaps(3);
        let prepared = PreparedTrace::build(&trace, &config);
        let ladder = MultiStateParams::mobile_ata();
        let ski = SkiRental::new(&ladder);
        let one = LambdaLadder::new(&ladder, 1.0);
        for kind in [
            PowerManagerKind::PCAP,
            PowerManagerKind::Timeout,
            PowerManagerKind::MultiStatePcap,
        ] {
            let a = evaluate_prepared_multistate(&prepared, &config, kind, &ladder, &ski);
            let b = evaluate_prepared_multistate(&prepared, &config, kind, &ladder, &one);
            assert_eq!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap(),
                "λ=1 diverged from ski-rental under {kind:?}"
            );
            assert_eq!(a.ladder_stats.bottom_counts, b.ladder_stats.bottom_counts);
            assert_eq!(a.ladder_stats.idle_gaps, b.ladder_stats.idle_gaps);
        }
    }

    #[test]
    fn lambda_ratio_respects_the_envelope_even_under_injected_errors() {
        let config = SimConfig::paper();
        let trace = trace_with_gaps(4);
        let prepared = PreparedTrace::build(&trace, &config);
        let ladder = MultiStateParams::mobile_ata();
        let kind = PowerManagerKind::PCAP;
        let oracle = evaluate_prepared_multistate(&prepared, &config, kind, &ladder, &OracleLadder);
        let gap = |o: &MultiStateOutcome| o.report.energy.total().0 - o.report.energy.busy.0;
        let opt = gap(&oracle);
        for lambda in [0.0, 0.5, 1.0] {
            let policy = LambdaLadder::new(&ladder, lambda);
            let bound = lambda_bounds(&ladder, lambda).robustness;
            for rate in [0.0, 0.5, 1.0] {
                let noisy = NoisyVotes::new(&policy, rate, 0xC0FFEE);
                let out = evaluate_prepared_multistate(&prepared, &config, kind, &ladder, &noisy);
                let ratio = gap(&out) / opt;
                assert!(
                    ratio >= 1.0 - 1e-9,
                    "λ={lambda} e={rate}: beat the clairvoyant oracle"
                );
                assert!(
                    ratio <= bound * (1.0 + 1e-9),
                    "λ={lambda} e={rate}: ratio {ratio} exceeds robustness {bound}"
                );
            }
        }
    }

    #[test]
    fn noisy_votes_evaluate_deterministically_through_the_engine() {
        let config = SimConfig::paper();
        let trace = trace_with_gaps(3);
        let prepared = PreparedTrace::build(&trace, &config);
        let ladder = MultiStateParams::mobile_ata();
        let policy = LambdaLadder::new(&ladder, 0.5);
        let kind = PowerManagerKind::PCAP;
        let eval = |seed: u64, rate: f64| {
            let noisy = NoisyVotes::new(&policy, rate, seed);
            let out = evaluate_prepared_multistate(&prepared, &config, kind, &ladder, &noisy);
            serde_json::to_string(&out.report).unwrap()
        };
        assert_eq!(eval(9, 0.5), eval(9, 0.5), "same seed must replay bitwise");
        // Rate 0 is transparent: bitwise the bare policy, any seed.
        let bare = evaluate_prepared_multistate(&prepared, &config, kind, &ladder, &policy);
        assert_eq!(eval(1, 0.0), serde_json::to_string(&bare.report).unwrap());
    }

    #[test]
    fn oracle_policy_never_costs_more_than_predictive_or_ski() {
        let config = SimConfig::paper();
        let trace = trace_with_gaps(3);
        let prepared = PreparedTrace::build(&trace, &config);
        let ladder = MultiStateParams::mobile_ata();
        let ski = SkiRental::new(&ladder);
        let kind = PowerManagerKind::PCAP;
        let oracle = evaluate_prepared_multistate(&prepared, &config, kind, &ladder, &OracleLadder);
        let pred = evaluate_prepared_multistate(&prepared, &config, kind, &ladder, &PredictiveJump);
        let rental = evaluate_prepared_multistate(&prepared, &config, kind, &ladder, &ski);
        let gap = |o: &MultiStateOutcome| o.report.energy.total().0 - o.report.energy.busy.0;
        assert!(gap(&oracle) <= gap(&pred) + 1e-9);
        assert!(gap(&oracle) <= gap(&rental) + 1e-9);
    }

    #[test]
    fn audit_multistate_reconciles_and_aligns_bottom_outs() {
        let config = SimConfig::paper();
        let trace = trace_with_gaps(2);
        let prepared = PreparedTrace::build(&trace, &config);
        let ladder = MultiStateParams::mobile_ata();
        let (audit, stats) = audit_prepared_multistate(
            &prepared,
            &config,
            PowerManagerKind::PCAP,
            &ladder,
            &PredictiveJump,
        );
        assert_eq!(audit.ladder_bottoms.len(), audit.records.len());
        assert_eq!(
            stats.total_gaps(),
            audit.ladder_bottoms.len() as u64,
            "stats cover every audited decision"
        );
        let plain = evaluate_prepared_multistate(
            &prepared,
            &config,
            PowerManagerKind::PCAP,
            &ladder,
            &PredictiveJump,
        );
        assert_eq!(audit.report, plain.report, "observer must not perturb");
        assert_eq!(audit.audit_energy.energy, plain.report.energy);
        assert_eq!(audit.audit_energy.base_energy, plain.report.base_energy);
        assert_eq!(stats, plain.ladder_stats);
    }
}
