//! Power-manager construction: per-process predictors with
//! application-level shared state and table-reuse policy.

use pcap_baselines::{
    AdaptiveTimeout, ExponentialAverage, LastBusy, LearningTree, LtConfig, SharedTree, Stochastic,
    TimeoutPredictor,
};
use pcap_core::{
    IdlePredictor, Pcap, PcapConfig, PcapVariant, SharedTable, ShutdownVote, WithBackup,
};
use pcap_types::{Pid, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::SimConfig;

/// Which power manager to simulate — the x-axis of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerManagerKind {
    /// Fixed timeout (TP) at [`SimConfig::timeout`].
    Timeout,
    /// The clairvoyant ideal predictor of Figure 8.
    Oracle,
    /// PCAP with a variant and table-reuse policy (`reuse: false` is
    /// the paper's PCAPa).
    Pcap {
        /// Which §4 variant.
        variant: PcapVariant,
        /// Keep the prediction table across executions (§4.2)?
        reuse: bool,
    },
    /// The Learning Tree (`reuse: false` is LTa).
    LearningTree {
        /// Keep the tree across executions?
        reuse: bool,
    },
    /// Hwang & Wu's exponential average (extension baseline).
    ExponentialAverage,
    /// Feedback-adjusted timeout (extension baseline).
    AdaptiveTimeout,
    /// Srivastava's L-shape rule (extension baseline).
    LastBusy,
    /// Sliding-window expected-benefit policy (stochastic family, §2).
    Stochastic,
    /// PCAP whose pre-shutdown idle interval (wait-window or backup
    /// timeout) is spent in the deepest shallow low-power state that
    /// pays off within a wait-window (the §7 multi-state extension).
    MultiStatePcap,
}

impl PowerManagerKind {
    /// Plain PCAP with table reuse — the paper's headline configuration.
    pub const PCAP: PowerManagerKind = PowerManagerKind::Pcap {
        variant: PcapVariant::Base,
        reuse: true,
    };

    /// LT with tree reuse.
    pub const LT: PowerManagerKind = PowerManagerKind::LearningTree { reuse: true };

    /// Whether this kind's per-process predictors may be recycled
    /// across processes (and devices) after
    /// [`on_run_end`](pcap_core::IdlePredictor::on_run_end).
    ///
    /// True for every kind whose `on_run_end` restores the predictor
    /// to its freshly constructed state (shared tables are owned by the
    /// [`Manager`], not the box). The one exception is
    /// [`AdaptiveTimeout`](PowerManagerKind::AdaptiveTimeout), whose
    /// feedback-adjusted timeout deliberately persists for the life of
    /// the box — recycling it would leak one process's adaptation into
    /// the next.
    pub fn recyclable_predictors(self) -> bool {
        !matches!(self, PowerManagerKind::AdaptiveTimeout)
    }

    /// The paper's label for the configuration ("TP", "PCAPh", "LTa", …).
    pub fn label(self) -> String {
        match self {
            PowerManagerKind::Timeout => "TP".into(),
            PowerManagerKind::Oracle => "Ideal".into(),
            PowerManagerKind::Pcap { variant, reuse } => {
                if reuse {
                    variant.label().into()
                } else {
                    format!("{}a", variant.label())
                }
            }
            PowerManagerKind::LearningTree { reuse } => {
                if reuse {
                    "LT".into()
                } else {
                    "LTa".into()
                }
            }
            PowerManagerKind::ExponentialAverage => "ExpAvg".into(),
            PowerManagerKind::AdaptiveTimeout => "AdaptTO".into(),
            PowerManagerKind::LastBusy => "LastBusy".into(),
            PowerManagerKind::Stochastic => "Stochastic".into(),
            PowerManagerKind::MultiStatePcap => "PCAP+ms".into(),
        }
    }

    /// Builds the per-application manager (shared state lives inside).
    pub fn manager(self, config: &SimConfig) -> Manager {
        Manager::new(self, config)
    }
}

impl fmt::Display for PowerManagerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Application-level shared predictor state.
#[derive(Debug, Clone)]
enum Shared {
    None,
    Table(SharedTable),
    Tree(SharedTree),
}

/// A per-application power manager: constructs per-process predictors,
/// carries shared tables/trees across executions, and applies the
/// reuse-or-discard policy at run boundaries.
#[derive(Debug)]
pub struct Manager {
    kind: PowerManagerKind,
    config: SimConfig,
    shared: Shared,
}

impl Manager {
    fn new(kind: PowerManagerKind, config: &SimConfig) -> Manager {
        let shared = match kind {
            PowerManagerKind::Pcap { .. } | PowerManagerKind::MultiStatePcap => {
                Shared::Table(match config.pcap_table_capacity {
                    Some(capacity) => SharedTable::with_capacity(capacity),
                    None => SharedTable::unbounded(),
                })
            }
            PowerManagerKind::LearningTree { .. } => Shared::Tree(SharedTree::new()),
            _ => Shared::None,
        };
        Manager {
            kind,
            config: config.clone(),
            shared,
        }
    }

    /// The manager's kind.
    pub fn kind(&self) -> PowerManagerKind {
        self.kind
    }

    /// True for the ideal predictor, which the global simulator
    /// special-cases (it acts on merged gaps, not per-process votes).
    pub fn is_oracle(&self) -> bool {
        self.kind == PowerManagerKind::Oracle
    }

    fn pcap_config(&self, variant: PcapVariant) -> PcapConfig {
        PcapConfig {
            variant,
            wait_window: self.config.wait_window,
            breakeven: self.config.disk.breakeven_time(),
            history_len: self.config.pcap_history_len,
            ignore_kernel_accesses: true,
            scheme: self.config.signature_scheme,
        }
    }

    fn lt_config(&self) -> LtConfig {
        LtConfig {
            history_len: self.config.lt_history_len,
            wait_window: self.config.wait_window,
            breakeven: self.config.disk.breakeven_time(),
            ..LtConfig::paper()
        }
    }

    /// Creates the predictor for one process of the current execution.
    pub fn for_process(&mut self, _pid: Pid) -> Box<dyn IdlePredictor> {
        let backup = self.config.backup_timeout;
        match (self.kind, &self.shared) {
            (PowerManagerKind::Timeout, _) => Box::new(TimeoutPredictor::new(self.config.timeout)),
            (PowerManagerKind::Oracle, _) => Box::new(pcap_baselines::Oracle::new(
                self.config.disk.breakeven_time(),
            )),
            (PowerManagerKind::Pcap { variant, .. }, Shared::Table(table)) => Box::new(
                WithBackup::new(Pcap::new(self.pcap_config(variant), table.clone()), backup),
            ),
            (PowerManagerKind::MultiStatePcap, Shared::Table(table)) => Box::new(WithBackup::new(
                Pcap::new(self.pcap_config(PcapVariant::Base), table.clone()),
                backup,
            )),
            (PowerManagerKind::LearningTree { .. }, Shared::Tree(tree)) => Box::new(
                WithBackup::new(LearningTree::new(self.lt_config(), tree.clone()), backup),
            ),
            (PowerManagerKind::ExponentialAverage, _) => Box::new(WithBackup::new(
                ExponentialAverage::new(
                    0.5,
                    self.config.wait_window,
                    self.config.disk.breakeven_time(),
                ),
                backup,
            )),
            (PowerManagerKind::AdaptiveTimeout, _) => Box::new(AdaptiveTimeout::new(
                self.config.timeout,
                SimDuration::from_secs(1),
                SimDuration::from_secs(60),
                self.config.disk.breakeven_time(),
            )),
            (PowerManagerKind::LastBusy, _) => Box::new(WithBackup::new(
                LastBusy::new(
                    SimDuration::from_secs(2),
                    SimDuration::from_secs(1),
                    self.config.wait_window,
                ),
                backup,
            )),
            (PowerManagerKind::Stochastic, _) => Box::new(WithBackup::new(
                Stochastic::new(
                    64,
                    self.config.wait_window,
                    self.config.disk.breakeven_time(),
                ),
                backup,
            )),
            (kind, _) => unreachable!("inconsistent shared state for {kind:?}"),
        }
    }

    /// The standing vote of a process that has not yet performed any
    /// I/O, anchored at its start time: trainable predictors fall back
    /// to the backup timeout, plain timeouts to their own timer, the
    /// oracle abstains (it is special-cased anyway).
    pub fn initial_vote(&self) -> ShutdownVote {
        match self.kind {
            PowerManagerKind::Timeout => ShutdownVote::after(self.config.timeout),
            PowerManagerKind::AdaptiveTimeout => ShutdownVote::after(self.config.timeout),
            PowerManagerKind::Oracle => ShutdownVote::never(),
            _ => ShutdownVote::backup_after(self.config.backup_timeout),
        }
    }

    /// The shallow low-power state to hold during pre-shutdown idle
    /// intervals, if this manager uses the §7 multi-state extension.
    /// Chosen so it pays off even for the shortest such interval (one
    /// wait-window); longer intervals only save more.
    pub fn window_state(&self) -> Option<pcap_disk::LowPowerState> {
        if self.kind != PowerManagerKind::MultiStatePcap {
            return None;
        }
        let ladder = pcap_disk::MultiStateParams::mobile_ata();
        ladder.best_state_for(self.config.wait_window).cloned()
    }

    /// Applies the run-boundary policy: discard shared state unless the
    /// configuration reuses tables across executions.
    pub fn on_run_end(&mut self) {
        let discard = match self.kind {
            PowerManagerKind::Pcap { reuse, .. } => !reuse,
            PowerManagerKind::LearningTree { reuse } => !reuse,
            _ => false,
        };
        if discard {
            match &self.shared {
                Shared::Table(t) => t.clear(),
                Shared::Tree(t) => t.clear(),
                Shared::None => {}
            }
        }
    }

    /// Forgets all shared predictor state (prediction table or learning
    /// tree) regardless of the reuse policy, keeping allocated capacity.
    ///
    /// A reset manager is behaviorally identical to a freshly built one
    /// — the streaming pipeline calls this at device boundaries so one
    /// manager (and the predictor boxes holding handles to its shared
    /// table) serves an unbounded device population.
    pub fn reset_shared(&mut self) {
        match &self.shared {
            Shared::Table(t) => t.clear(),
            Shared::Tree(t) => t.clear(),
            Shared::None => {}
        }
    }

    /// Entries in the shared prediction structure (Table 3), if the
    /// manager has one.
    pub fn table_entries(&self) -> Option<usize> {
        match &self.shared {
            Shared::Table(t) => Some(t.len()),
            Shared::Tree(t) => Some(t.len()),
            Shared::None => None,
        }
    }

    /// Detected signature-aliasing events in the prediction table (the
    /// paper reports "this signature aliasing did not occur" for its
    /// traces; we measure instead of assume).
    pub fn table_aliases(&self) -> Option<u64> {
        match &self.shared {
            Shared::Table(t) => Some(t.alias_count()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_core::VoteSource;

    #[test]
    fn labels_match_paper() {
        assert_eq!(PowerManagerKind::Timeout.label(), "TP");
        assert_eq!(PowerManagerKind::PCAP.label(), "PCAP");
        assert_eq!(
            PowerManagerKind::Pcap {
                variant: PcapVariant::History,
                reuse: true
            }
            .label(),
            "PCAPh"
        );
        assert_eq!(
            PowerManagerKind::Pcap {
                variant: PcapVariant::Base,
                reuse: false
            }
            .label(),
            "PCAPa"
        );
        assert_eq!(PowerManagerKind::LT.label(), "LT");
        assert_eq!(
            PowerManagerKind::LearningTree { reuse: false }.label(),
            "LTa"
        );
        assert_eq!(PowerManagerKind::Oracle.to_string(), "Ideal");
    }

    #[test]
    fn manager_builds_predictors() {
        let config = SimConfig::paper();
        for kind in [
            PowerManagerKind::Timeout,
            PowerManagerKind::Oracle,
            PowerManagerKind::PCAP,
            PowerManagerKind::LT,
            PowerManagerKind::ExponentialAverage,
            PowerManagerKind::AdaptiveTimeout,
            PowerManagerKind::LastBusy,
        ] {
            let mut m = kind.manager(&config);
            let p = m.for_process(Pid(1));
            assert!(!p.name().is_empty(), "{kind}");
        }
    }

    #[test]
    fn initial_votes() {
        let config = SimConfig::paper();
        let tp = PowerManagerKind::Timeout.manager(&config);
        assert_eq!(tp.initial_vote().delay, Some(config.timeout));
        let pcap = PowerManagerKind::PCAP.manager(&config);
        let v = pcap.initial_vote();
        assert_eq!(v.source, VoteSource::Backup);
        assert_eq!(v.delay, Some(config.backup_timeout));
        assert_eq!(
            PowerManagerKind::Oracle
                .manager(&config)
                .initial_vote()
                .delay,
            None
        );
    }

    #[test]
    fn reuse_policy() {
        let config = SimConfig::paper();
        // Learn something through a process predictor, then end the run.
        let exercise = |kind: PowerManagerKind| -> usize {
            let mut m = kind.manager(&config);
            {
                let mut p = m.for_process(Pid(1));
                let access = pcap_types::DiskAccess {
                    time: pcap_types::SimTime::ZERO,
                    pid: Pid(1),
                    pc: pcap_types::Pc(7),
                    fd: pcap_types::Fd(3),
                    kind: pcap_types::IoKind::Read,
                    pages: 1,
                };
                p.on_access(&access, SimDuration::ZERO);
                p.on_idle_end(SimDuration::from_secs(30));
                p.on_run_end();
            }
            m.on_run_end();
            m.table_entries().unwrap()
        };
        assert_eq!(exercise(PowerManagerKind::PCAP), 1, "reuse keeps the table");
        assert_eq!(
            exercise(PowerManagerKind::Pcap {
                variant: PcapVariant::Base,
                reuse: false
            }),
            0,
            "PCAPa discards at exit"
        );
    }

    #[test]
    fn oracle_detection() {
        let config = SimConfig::paper();
        assert!(PowerManagerKind::Oracle.manager(&config).is_oracle());
        assert!(!PowerManagerKind::PCAP.manager(&config).is_oracle());
        assert_eq!(
            PowerManagerKind::PCAP.manager(&config).kind(),
            PowerManagerKind::PCAP
        );
    }
}
