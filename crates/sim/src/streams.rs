//! Per-run stream preprocessing: cache filtering, access serialization,
//! and per-process / merged idle-gap computation.

use crate::SimConfig;
use pcap_cache::CacheStats;
use pcap_trace::TraceRun;
use pcap_types::{DiskAccess, Pid, SimDuration, SimTime, TraceEvent};
use std::collections::HashMap;

/// A process's lifetime within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// Process creation (run start for the root, fork time otherwise).
    pub start: SimTime,
    /// Process exit.
    pub end: SimTime,
}

/// The preprocessed view of one execution that both the local and the
/// global evaluation consume.
#[derive(Debug, Clone)]
pub struct RunStreams {
    /// Disk accesses after the file cache, in time order.
    pub accesses: Vec<DiskAccess>,
    /// Serialized completion time of each access (a single disk serves
    /// one access at a time).
    pub completions: Vec<SimTime>,
    /// For each access: the idle gap to the next access *of the same
    /// process* (or to that process's exit for its last access).
    pub local_gaps: Vec<SimDuration>,
    /// For each access: the idle gap to the next access of *any*
    /// process (or to the run end for the last access).
    pub global_gaps: Vec<SimDuration>,
    /// Process lifetimes.
    pub lifetimes: HashMap<Pid, Lifetime>,
    /// End of the run.
    pub run_end: SimTime,
    /// File-cache statistics for the run.
    pub cache_stats: CacheStats,
}

impl RunStreams {
    /// Preprocesses one run under the simulation configuration.
    pub fn build(run: &TraceRun, config: &SimConfig) -> RunStreams {
        let (accesses, cache_stats) = pcap_cache::filter_run(run, &config.cache);

        // Serialize service: the disk finishes one access before the
        // next starts.
        let mut completions = Vec::with_capacity(accesses.len());
        let mut disk_free = SimTime::ZERO;
        for a in &accesses {
            let start = a.time.max(disk_free);
            let done = start + config.disk.service_time(a.pages);
            completions.push(done);
            disk_free = done;
        }

        // Lifetimes.
        let mut lifetimes: HashMap<Pid, Lifetime> = HashMap::new();
        lifetimes.insert(
            run.root,
            Lifetime {
                start: SimTime::ZERO,
                end: run.end,
            },
        );
        for e in &run.events {
            match *e {
                TraceEvent::Fork { time, child, .. } => {
                    lifetimes.insert(
                        child,
                        Lifetime {
                            start: time,
                            end: run.end,
                        },
                    );
                }
                TraceEvent::Exit { time, pid } => {
                    if let Some(l) = lifetimes.get_mut(&pid) {
                        l.end = time;
                    }
                }
                TraceEvent::Io(_) => {}
            }
        }

        // Per-process gaps: scan backwards remembering each pid's next
        // access arrival.
        let mut local_gaps = vec![SimDuration::ZERO; accesses.len()];
        let mut next_of: HashMap<Pid, SimTime> = HashMap::new();
        for i in (0..accesses.len()).rev() {
            let pid = accesses[i].pid;
            let horizon = next_of
                .get(&pid)
                .copied()
                .unwrap_or_else(|| lifetimes.get(&pid).map_or(run.end, |l| l.end));
            local_gaps[i] = horizon.saturating_since(completions[i]);
            next_of.insert(pid, accesses[i].time);
        }

        // Merged gaps.
        let mut global_gaps = vec![SimDuration::ZERO; accesses.len()];
        for i in 0..accesses.len() {
            let horizon = if i + 1 < accesses.len() {
                accesses[i + 1].time
            } else {
                run.end
            };
            global_gaps[i] = horizon.saturating_since(completions[i]);
        }

        RunStreams {
            accesses,
            completions,
            local_gaps,
            global_gaps,
            lifetimes,
            run_end: run.end,
            cache_stats,
        }
    }

    /// Idle periods longer than `breakeven` in the merged stream — the
    /// "global" idle-period count of Table 1.
    pub fn global_opportunities(&self, breakeven: SimDuration) -> usize {
        self.global_gaps.iter().filter(|g| **g > breakeven).count()
    }

    /// Idle periods longer than `breakeven` summed over per-process
    /// streams — the "local" idle-period count of Table 1.
    pub fn local_opportunities(&self, breakeven: SimDuration) -> usize {
        self.local_gaps.iter().filter(|g| **g > breakeven).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_trace::TraceRunBuilder;
    use pcap_types::{Fd, FileId, IoKind, Pc};

    fn two_process_run() -> TraceRun {
        let mut b = TraceRunBuilder::new(Pid(1));
        b.fork(SimTime::from_millis(10), Pid(1), Pid(2));
        // Root reads fresh pages at 1 s, 2 s, 30 s; helper at 2.5 s.
        for (t, pid, page) in [
            (1_000u64, 1u32, 0u64),
            (2_000, 1, 1),
            (2_500, 2, 2),
            (30_000, 1, 3),
        ] {
            b.io(
                SimTime::from_millis(t),
                Pid(pid),
                Pc(0x100 + pid),
                IoKind::Read,
                Fd(3),
                FileId(7),
                page * 4096,
                4096,
            );
        }
        b.exit(SimTime::from_secs(40), Pid(2));
        b.exit(SimTime::from_secs(60), Pid(1));
        b.finish().unwrap()
    }

    #[test]
    fn gaps_and_lifetimes() {
        let run = two_process_run();
        let config = SimConfig::paper();
        let s = RunStreams::build(&run, &config);
        assert_eq!(s.accesses.len(), 4);
        // Global gap after access 2 (helper at 2.5 s) runs to 30 s.
        let g2 = s.global_gaps[2].as_secs_f64();
        assert!((g2 - 27.5).abs() < 0.1, "{g2}");
        // Helper's local gap after its only access runs to its exit at 40 s.
        let l2 = s.local_gaps[2].as_secs_f64();
        assert!((l2 - 37.5).abs() < 0.1, "{l2}");
        // Root's final gap runs to run end (60 s).
        let l3 = s.local_gaps[3].as_secs_f64();
        assert!((l3 - 30.0).abs() < 0.1, "{l3}");
        assert_eq!(s.lifetimes[&Pid(2)].start, SimTime::from_millis(10));
        assert_eq!(s.lifetimes[&Pid(2)].end, SimTime::from_secs(40));

        let be = config.disk.breakeven_time();
        assert_eq!(s.global_opportunities(be), 2); // 27.5 s and 30 s
        assert_eq!(s.local_opportunities(be), 3); // 27.5≈28, 37.5, 30
    }

    #[test]
    fn completions_serialize() {
        let mut b = TraceRunBuilder::new(Pid(1));
        // Two simultaneous large reads: the second must wait.
        for page in [0u64, 100] {
            b.io(
                SimTime::from_secs(1),
                Pid(1),
                Pc(0x1),
                IoKind::Read,
                Fd(3),
                FileId(1),
                page * 4096,
                16 * 4096,
            );
        }
        b.exit(SimTime::from_secs(10), Pid(1));
        let run = b.finish().unwrap();
        let s = RunStreams::build(&run, &SimConfig::paper());
        assert_eq!(s.accesses.len(), 2);
        assert!(s.completions[1] > s.completions[0]);
        let service = SimConfig::paper().disk.service_time(16);
        assert_eq!(s.completions[1], SimTime::from_secs(1) + service + service);
    }

    #[test]
    fn empty_run_is_empty() {
        let mut b = TraceRunBuilder::new(Pid(1));
        b.exit(SimTime::from_secs(1), Pid(1));
        let run = b.finish().unwrap();
        let s = RunStreams::build(&run, &SimConfig::paper());
        assert!(s.accesses.is_empty());
        assert_eq!(s.global_opportunities(SimDuration::ZERO), 0);
    }
}
