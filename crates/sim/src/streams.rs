//! Per-run stream preprocessing: cache filtering, access serialization,
//! and per-process / merged idle-gap computation.
//!
//! [`RunStreams`] depends only on the trace run, the cache
//! configuration and the disk parameters — never on the power manager —
//! so one build can be shared (immutably) by every manager in the
//! comparison grid. To make that sharing cheap to consume, everything
//! the simulation loop needs per access is precomputed into dense,
//! index-addressed tables:
//!
//! * pids are interned into a **compact pid index** (root first, then
//!   forked children in event order), replacing per-access
//!   `HashMap<Pid, …>` lookups downstream with direct `Vec` indexing;
//! * lifetimes live in a `Vec` keyed by that index;
//! * fork/exit events are pre-resolved into a time-ordered
//!   [`LifecycleEvent`] list carrying pid indices, so the engine walks
//!   a slice instead of re-deriving lifecycles per manager.

use crate::SimConfig;
use pcap_cache::{CacheStats, FileCache};
use pcap_trace::TraceRun;
use pcap_types::{DiskAccess, Pid, SimDuration, SimTime, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every [`RunStreams::build`] invocation since process start.
///
/// This is the observability hook for the prepare-once contract: after
/// a warmed grid, the counter must equal the number of distinct
/// `(run, cache+disk config)` pairs — not runs × managers. `pcap bench`
/// reports the per-phase deltas.
static PREPARE_CALLS: AtomicU64 = AtomicU64::new(0);

/// Total [`RunStreams::build`] invocations so far in this process.
pub fn prepare_call_count() -> u64 {
    PREPARE_CALLS.load(Ordering::Relaxed)
}

/// A process's lifetime within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// Process creation (run start for the root, fork time otherwise).
    pub start: SimTime,
    /// Process exit.
    pub end: SimTime,
}

/// What happens to a process at a [`LifecycleEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleKind {
    /// The process starts (run start for the root, fork otherwise).
    Start,
    /// The process exits.
    Exit,
}

/// A pre-resolved fork/exit event: time, kind, and the *compact pid
/// index* of the affected process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// When the event occurs.
    pub time: SimTime,
    /// Start or exit.
    pub kind: LifecycleKind,
    /// Compact pid index (see [`RunStreams::pid_index`]).
    pub pidx: u32,
}

/// The preprocessed view of one execution that both the local and the
/// global evaluation consume.
///
/// Deliberately **not** `Clone`: one build per `(run, config)` is the
/// whole point — consumers borrow it.
#[derive(Debug)]
pub struct RunStreams {
    /// Disk accesses after the file cache, in time order.
    pub accesses: Vec<DiskAccess>,
    /// Serialized completion time of each access (a single disk serves
    /// one access at a time).
    pub completions: Vec<SimTime>,
    /// For each access: the idle gap to the next access *of the same
    /// process* (or to that process's exit for its last access).
    pub local_gaps: Vec<SimDuration>,
    /// For each access: the idle gap to the next access of *any*
    /// process (or to the run end for the last access).
    pub global_gaps: Vec<SimDuration>,
    /// Interned pids: root first, then forked children in event order.
    pids: Vec<Pid>,
    /// Process lifetimes, keyed by compact pid index.
    lifetimes: Vec<Lifetime>,
    /// Compact pid index of each access's issuing process.
    access_pidx: Vec<u32>,
    /// Time-ordered start/exit events with pre-resolved pid indices.
    lifecycle: Vec<LifecycleEvent>,
    /// End of the run.
    pub run_end: SimTime,
    /// File-cache statistics for the run.
    pub cache_stats: CacheStats,
    /// Scratch for the backward local-gap scan, kept across rebuilds so
    /// the streaming pipeline never reallocates it.
    next_of: Vec<Option<SimTime>>,
}

impl RunStreams {
    /// Preprocesses one run under the simulation configuration.
    pub fn build(run: &TraceRun, config: &SimConfig) -> RunStreams {
        let mut cache = FileCache::new(config.cache.clone());
        let mut streams = RunStreams::empty();
        streams.rebuild(run, config, &mut cache);
        streams
    }

    /// An empty shell ready to be filled by [`RunStreams::rebuild`].
    /// Holds no accesses; every table is zero-length.
    pub fn empty() -> RunStreams {
        RunStreams {
            accesses: Vec::new(),
            completions: Vec::new(),
            local_gaps: Vec::new(),
            global_gaps: Vec::new(),
            pids: Vec::new(),
            lifetimes: Vec::new(),
            access_pidx: Vec::new(),
            lifecycle: Vec::new(),
            run_end: SimTime::ZERO,
            cache_stats: CacheStats::default(),
            next_of: Vec::new(),
        }
    }

    /// Preprocesses one run *in place*, reusing this instance's table
    /// capacities and the caller's file cache (reset to cold first).
    /// [`RunStreams::build`] delegates here, so the two paths cannot
    /// diverge: a rebuilt instance is field-for-field identical to a
    /// freshly built one.
    ///
    /// `cache` must have been created from `config.cache`; the streaming
    /// pipeline keeps one per worker and rebuilds millions of runs
    /// through it with no steady-state allocation.
    pub fn rebuild(&mut self, run: &TraceRun, config: &SimConfig, cache: &mut FileCache) {
        debug_assert_eq!(cache.config(), &config.cache, "cache/config mismatch");
        PREPARE_CALLS.fetch_add(1, Ordering::Relaxed);
        self.run_end = run.end;
        self.accesses.clear();
        self.cache_stats = pcap_cache::filter_run_into(run, cache, &mut self.accesses);

        // Serialize service: the disk finishes one access before the
        // next starts.
        self.completions.clear();
        self.completions.reserve(self.accesses.len());
        let mut disk_free = SimTime::ZERO;
        for a in &self.accesses {
            let start = a.time.max(disk_free);
            let done = start + config.disk.service_time(a.pages);
            self.completions.push(done);
            disk_free = done;
        }

        // Intern pids (root = index 0, children in fork order) and
        // record lifetimes + lifecycle against the compact index. Runs
        // have a handful of processes, so a linear pid scan beats
        // hashing.
        self.pids.clear();
        self.pids.push(run.root);
        self.lifetimes.clear();
        self.lifetimes.push(Lifetime {
            start: SimTime::ZERO,
            end: run.end,
        });
        self.lifecycle.clear();
        self.lifecycle.push(LifecycleEvent {
            time: SimTime::ZERO,
            kind: LifecycleKind::Start,
            pidx: 0,
        });
        let index_of = |pids: &[Pid], pid: Pid| pids.iter().position(|p| *p == pid);
        for e in &run.events {
            match *e {
                TraceEvent::Fork { time, child, .. } => {
                    let pidx = self.pids.len() as u32;
                    self.pids.push(child);
                    self.lifetimes.push(Lifetime {
                        start: time,
                        end: run.end,
                    });
                    self.lifecycle.push(LifecycleEvent {
                        time,
                        kind: LifecycleKind::Start,
                        pidx,
                    });
                }
                TraceEvent::Exit { time, pid } => {
                    if let Some(pidx) = index_of(&self.pids, pid) {
                        self.lifetimes[pidx].end = time;
                        self.lifecycle.push(LifecycleEvent {
                            time,
                            kind: LifecycleKind::Exit,
                            pidx: pidx as u32,
                        });
                    }
                }
                TraceEvent::Io(_) => {}
            }
        }

        // Resolve each access's pid once. Cache write-backs are
        // attributed to the dirtying process, which is always traced,
        // so the lookup cannot fail on validated runs.
        self.access_pidx.clear();
        self.access_pidx.reserve(self.accesses.len());
        for a in &self.accesses {
            let pidx = index_of(&self.pids, a.pid).expect("access pid is traced") as u32;
            self.access_pidx.push(pidx);
        }

        // Per-process gaps: scan backwards remembering each pid's next
        // access arrival — dense table, no hashing.
        self.local_gaps.clear();
        self.local_gaps
            .resize(self.accesses.len(), SimDuration::ZERO);
        self.next_of.clear();
        self.next_of.resize(self.pids.len(), None);
        for i in (0..self.accesses.len()).rev() {
            let pidx = self.access_pidx[i] as usize;
            let horizon = self.next_of[pidx].unwrap_or(self.lifetimes[pidx].end);
            self.local_gaps[i] = horizon.saturating_since(self.completions[i]);
            self.next_of[pidx] = Some(self.accesses[i].time);
        }

        // Merged gaps.
        self.global_gaps.clear();
        self.global_gaps
            .resize(self.accesses.len(), SimDuration::ZERO);
        for i in 0..self.accesses.len() {
            let horizon = if i + 1 < self.accesses.len() {
                self.accesses[i + 1].time
            } else {
                run.end
            };
            self.global_gaps[i] = horizon.saturating_since(self.completions[i]);
        }
    }

    /// The run's root process.
    pub fn root(&self) -> Pid {
        self.pids[0]
    }

    /// Number of distinct processes in the run.
    pub fn pid_count(&self) -> usize {
        self.pids.len()
    }

    /// Interned pids (root first, then forked children in event order).
    pub fn pids(&self) -> &[Pid] {
        &self.pids
    }

    /// The compact index of `pid`, if it appears in the run.
    pub fn pid_index(&self, pid: Pid) -> Option<usize> {
        self.pids.iter().position(|p| *p == pid)
    }

    /// The compact pid index of access `i`'s issuing process.
    pub fn access_pid_index(&self, i: usize) -> usize {
        self.access_pidx[i] as usize
    }

    /// The lifetime of the process at compact index `pidx`.
    pub fn lifetime_at(&self, pidx: usize) -> Lifetime {
        self.lifetimes[pidx]
    }

    /// The lifetime of `pid`, if it appears in the run.
    pub fn lifetime(&self, pid: Pid) -> Option<Lifetime> {
        self.pid_index(pid).map(|i| self.lifetimes[i])
    }

    /// Time-ordered start/exit events with pre-resolved pid indices.
    pub fn lifecycle(&self) -> &[LifecycleEvent] {
        &self.lifecycle
    }

    /// Idle periods longer than `breakeven` in the merged stream — the
    /// "global" idle-period count of Table 1.
    pub fn global_opportunities(&self, breakeven: SimDuration) -> usize {
        self.global_gaps.iter().filter(|g| **g > breakeven).count()
    }

    /// Idle periods longer than `breakeven` summed over per-process
    /// streams — the "local" idle-period count of Table 1.
    pub fn local_opportunities(&self, breakeven: SimDuration) -> usize {
        self.local_gaps.iter().filter(|g| **g > breakeven).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_trace::TraceRunBuilder;
    use pcap_types::{Fd, FileId, IoKind, Pc};

    fn two_process_run() -> TraceRun {
        let mut b = TraceRunBuilder::new(Pid(1));
        b.fork(SimTime::from_millis(10), Pid(1), Pid(2));
        // Root reads fresh pages at 1 s, 2 s, 30 s; helper at 2.5 s.
        for (t, pid, page) in [
            (1_000u64, 1u32, 0u64),
            (2_000, 1, 1),
            (2_500, 2, 2),
            (30_000, 1, 3),
        ] {
            b.io(
                SimTime::from_millis(t),
                Pid(pid),
                Pc(0x100 + pid),
                IoKind::Read,
                Fd(3),
                FileId(7),
                page * 4096,
                4096,
            );
        }
        b.exit(SimTime::from_secs(40), Pid(2));
        b.exit(SimTime::from_secs(60), Pid(1));
        b.finish().unwrap()
    }

    #[test]
    fn gaps_and_lifetimes() {
        let run = two_process_run();
        let config = SimConfig::paper();
        let s = RunStreams::build(&run, &config);
        assert_eq!(s.accesses.len(), 4);
        // Global gap after access 2 (helper at 2.5 s) runs to 30 s.
        let g2 = s.global_gaps[2].as_secs_f64();
        assert!((g2 - 27.5).abs() < 0.1, "{g2}");
        // Helper's local gap after its only access runs to its exit at 40 s.
        let l2 = s.local_gaps[2].as_secs_f64();
        assert!((l2 - 37.5).abs() < 0.1, "{l2}");
        // Root's final gap runs to run end (60 s).
        let l3 = s.local_gaps[3].as_secs_f64();
        assert!((l3 - 30.0).abs() < 0.1, "{l3}");
        let helper = s.lifetime(Pid(2)).unwrap();
        assert_eq!(helper.start, SimTime::from_millis(10));
        assert_eq!(helper.end, SimTime::from_secs(40));

        let be = config.disk.breakeven_time();
        assert_eq!(s.global_opportunities(be), 2); // 27.5 s and 30 s
        assert_eq!(s.local_opportunities(be), 3); // 27.5≈28, 37.5, 30
    }

    #[test]
    fn compact_pid_index_matches_fork_order() {
        let run = two_process_run();
        let s = RunStreams::build(&run, &SimConfig::paper());
        assert_eq!(s.root(), Pid(1));
        assert_eq!(s.pids(), &[Pid(1), Pid(2)]);
        assert_eq!(s.pid_index(Pid(2)), Some(1));
        assert_eq!(s.pid_index(Pid(9)), None);
        // Access 2 is the helper's.
        assert_eq!(s.access_pid_index(2), 1);
        assert_eq!(s.access_pid_index(0), 0);
    }

    #[test]
    fn lifecycle_is_time_ordered_with_resolved_indices() {
        let run = two_process_run();
        let s = RunStreams::build(&run, &SimConfig::paper());
        let lc = s.lifecycle();
        assert_eq!(lc.len(), 4); // root start, fork, 2 exits
        assert!(lc.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(lc[0].kind, LifecycleKind::Start);
        assert_eq!(lc[0].pidx, 0);
        assert_eq!(
            lc[1],
            LifecycleEvent {
                time: SimTime::from_millis(10),
                kind: LifecycleKind::Start,
                pidx: 1
            }
        );
        assert_eq!(lc[2].kind, LifecycleKind::Exit);
        assert_eq!(lc[2].pidx, 1);
        assert_eq!(lc[3].pidx, 0);
    }

    #[test]
    fn completions_serialize() {
        let mut b = TraceRunBuilder::new(Pid(1));
        // Two simultaneous large reads: the second must wait.
        for page in [0u64, 100] {
            b.io(
                SimTime::from_secs(1),
                Pid(1),
                Pc(0x1),
                IoKind::Read,
                Fd(3),
                FileId(1),
                page * 4096,
                16 * 4096,
            );
        }
        b.exit(SimTime::from_secs(10), Pid(1));
        let run = b.finish().unwrap();
        let s = RunStreams::build(&run, &SimConfig::paper());
        assert_eq!(s.accesses.len(), 2);
        assert!(s.completions[1] > s.completions[0]);
        let service = SimConfig::paper().disk.service_time(16);
        assert_eq!(s.completions[1], SimTime::from_secs(1) + service + service);
    }

    #[test]
    fn empty_run_is_empty() {
        let mut b = TraceRunBuilder::new(Pid(1));
        b.exit(SimTime::from_secs(1), Pid(1));
        let run = b.finish().unwrap();
        let s = RunStreams::build(&run, &SimConfig::paper());
        assert!(s.accesses.is_empty());
        assert_eq!(s.global_opportunities(SimDuration::ZERO), 0);
    }

    #[test]
    fn build_bumps_prepare_counter() {
        let before = prepare_call_count();
        let run = two_process_run();
        RunStreams::build(&run, &SimConfig::paper());
        RunStreams::build(&run, &SimConfig::paper());
        assert!(prepare_call_count() >= before + 2);
    }
}
