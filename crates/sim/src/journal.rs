//! Crash-safe append-only sweep journal: resumable, multi-process
//! deterministic sweeps.
//!
//! A journal is a single file of length-prefixed records
//! `(cell_key, content_hash, result_bytes)` behind a fixed header that
//! pins the record schema version and a caller-supplied *config hash*
//! (seed range, device count, manager grid — whatever parameterizes
//! the sweep). A journal written under a different configuration is
//! rejected with a named error ([`JournalError::ConfigMismatch`]), not
//! silently merged into the wrong table.
//!
//! Durability model, built on three properties:
//!
//! * **Appends are atomic-or-torn-at-EOF.** Every record is written as
//!   one `write_all` to an `O_APPEND` descriptor while holding an
//!   exclusive advisory lock on the journal file, then `sync_data`'d.
//!   A crash can therefore leave at most one *torn* record, and only
//!   at the tail. Recovery detects it by the length prefix (record
//!   runs past EOF) and truncates back to the last whole record;
//!   anywhere else, a bad length or a content-hash mismatch is real
//!   corruption and fails loudly ([`JournalError::Corrupt`]).
//! * **Results are deterministic.** Every cell is a pure function of
//!   the sweep configuration, so a record computed by any process at
//!   any time holds the same bytes. Duplicate records for one cell are
//!   legal if byte-identical (first one wins) and corruption otherwise.
//! * **Claims are advisory file locks.** A process claims a pending
//!   cell by taking `flock`-style exclusive locks on per-cell sidecar
//!   files under `<journal>.claims/`. Locks die with their process, so
//!   a crashed worker's claims free themselves and a restart (or a
//!   second concurrent process) picks the cells up — cooperation, not
//!   duplication.
//!
//! [`run_journaled`] ties the three together into the execution loop
//! used by `pcap sweep --journal` / `pcap run --journal`, and
//! [`sweep_fleet_journaled`] instantiates it for the streaming fleet
//! pipeline. The final readout always decodes *from the journal* in
//! canonical cell order, so output is byte-identical no matter which
//! process computed which cell, or how many times the run was killed
//! and resumed.
//!
//! The module also exports [`atomic_write`]: write-to-temp +
//! `rename`, the commit protocol used for `BENCH_sim.json` and golden
//! snapshot files so a mid-write crash can never leave a truncated
//! committed artifact.

use crate::engine::AppReport;
use crate::factory::PowerManagerKind;
use crate::metrics::{EnergyBreakdown, PredictionCounts};
use crate::stream::{FleetReport, FleetSlot, StreamWorker, FLEET_CHUNK};
use crate::sweep::SweepRunner;
use crate::SimConfig;
use pcap_disk::Joules;
use pcap_obs::JournalProgress;
use pcap_types::wire::{put, WireError, WireReader};
use pcap_workload::{fleet_cell_key, DevicePopulation};
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic: the first eight bytes of every journal.
pub const JOURNAL_MAGIC: [u8; 8] = *b"PCAPJRNL";

/// Record-schema version pinned in the header. Bump on any change to
/// the record layout; old journals are then rejected, never misread.
pub const JOURNAL_SCHEMA: u32 = 1;

/// Header length: magic + schema (`u32`) + config hash (`u64`).
pub const JOURNAL_HEADER_LEN: usize = 20;

/// Hard ceiling on one record's payload (cell key + hash + result).
/// Journal payloads (a whole chunk's slots, a seed's report grid) can
/// exceed the serve layer's 64 KiB `MAX_FRAME_LEN`, so the journal
/// carries its own bound; a length prefix above it is corruption.
pub const MAX_RECORD_LEN: usize = 1 << 24;

/// Bytes of record payload that precede the result: cell key + hash.
const RECORD_OVERHEAD: usize = 16;

/// FNV-1a 64-bit content hash, the integrity check on every record.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything that can go wrong opening, scanning, or extending a
/// journal — each case named so callers (and tests) can match on it.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io {
        /// Path being operated on.
        path: String,
        /// The OS error.
        error: io::Error,
    },
    /// The file exists but does not start with [`JOURNAL_MAGIC`].
    BadMagic {
        /// Path of the offending file.
        path: String,
    },
    /// The header's schema version is not [`JOURNAL_SCHEMA`].
    SchemaMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The header's config hash does not match this sweep's
    /// configuration — the journal belongs to a different grid, seed
    /// range, or device count.
    ConfigMismatch {
        /// Hash found in the header.
        found: u64,
        /// Hash of the requested configuration.
        expected: u64,
    },
    /// A structurally invalid record *before* the tail: bad length,
    /// content-hash mismatch, or two records for one cell with
    /// different bytes. Unlike a torn tail this is never self-healing.
    Corrupt {
        /// Byte offset of the offending record.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// A result payload exceeded [`MAX_RECORD_LEN`] at append time.
    Oversized {
        /// The payload length.
        len: usize,
    },
    /// A sweep worker failed while computing a cell.
    Task(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, error } => write!(f, "journal io error: {path}: {error}"),
            JournalError::BadMagic { path } => {
                write!(f, "not a sweep journal: {path} (bad magic)")
            }
            JournalError::SchemaMismatch { found, expected } => write!(
                f,
                "journal schema mismatch: file has v{found}, this build reads v{expected}"
            ),
            JournalError::ConfigMismatch { found, expected } => write!(
                f,
                "journal config mismatch: file pins {found:#018x}, this sweep is {expected:#018x} \
                 (different grid, seed range, or device count)"
            ),
            JournalError::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
            JournalError::Oversized { len } => {
                write!(
                    f,
                    "journal record too large: {len} bytes > {MAX_RECORD_LEN} max"
                )
            }
            JournalError::Task(message) => write!(f, "journaled task failed: {message}"),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(path: &Path, error: io::Error) -> JournalError {
    JournalError::Io {
        path: path.display().to_string(),
        error,
    }
}

/// An open sweep journal: the append-only record file plus this
/// process's in-memory view of completed cells and held claims.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    claims_dir: PathBuf,
    config_hash: u64,
    completed: HashMap<u64, Vec<u8>>,
    claims: HashMap<u64, File>,
    progress: JournalProgress,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for a sweep
    /// whose configuration hashes to `config_hash`, and recovers it:
    /// the header is validated, every whole record is loaded, and a
    /// torn tail (crash mid-append) is truncated away.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadMagic`] / [`JournalError::SchemaMismatch`] /
    /// [`JournalError::ConfigMismatch`] when the file belongs to
    /// something else, [`JournalError::Corrupt`] on non-tail damage,
    /// [`JournalError::Io`] on filesystem failures.
    pub fn open(path: impl AsRef<Path>, config_hash: u64) -> Result<Journal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let claims_dir = PathBuf::from(format!("{}.claims", path.display()));
        fs::create_dir_all(&claims_dir).map_err(|e| io_err(&claims_dir, e))?;
        let mut journal = Journal {
            path,
            file,
            claims_dir,
            config_hash,
            completed: HashMap::new(),
            claims: HashMap::new(),
            progress: JournalProgress::new(),
        };
        journal.refresh()?;
        Ok(journal)
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The config hash pinned in this journal's header.
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// Progress counters (resumed / computed / torn bytes, …).
    pub fn progress(&self) -> &JournalProgress {
        &self.progress
    }

    /// Whether `cell_key` has a committed result.
    pub fn is_done(&self, cell_key: u64) -> bool {
        self.completed.contains_key(&cell_key)
    }

    /// The committed result bytes for `cell_key`, if any.
    pub fn result(&self, cell_key: u64) -> Option<&[u8]> {
        self.completed.get(&cell_key).map(Vec::as_slice)
    }

    /// Number of committed cells.
    pub fn completed_cells(&self) -> usize {
        self.completed.len()
    }

    /// The expected header bytes for this journal's configuration.
    fn header_bytes(&self) -> Vec<u8> {
        let mut header = Vec::with_capacity(JOURNAL_HEADER_LEN);
        header.extend_from_slice(&JOURNAL_MAGIC);
        put::u32(&mut header, JOURNAL_SCHEMA);
        put::u64(&mut header, self.config_hash);
        header
    }

    /// Re-scans the journal under its exclusive lock: loads records
    /// appended by cooperating processes, repairs a torn tail by
    /// truncating to the last whole record, and (re)writes the header
    /// when the file is empty or holds only a torn header.
    ///
    /// # Errors
    ///
    /// Same named errors as [`Journal::open`].
    pub fn refresh(&mut self) -> Result<(), JournalError> {
        self.file.lock().map_err(|e| io_err(&self.path, e))?;
        let result = self.refresh_locked();
        let _ = self.file.unlock();
        result
    }

    fn refresh_locked(&mut self) -> Result<(), JournalError> {
        self.progress.add("refreshes", 1);
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err(&self.path, e))?;
        let mut bytes = Vec::new();
        self.file
            .read_to_end(&mut bytes)
            .map_err(|e| io_err(&self.path, e))?;
        let header = self.header_bytes();
        if bytes.len() < JOURNAL_HEADER_LEN {
            // Empty file, or a crash mid-header-write. A partial header
            // must be a prefix of the one we would write; anything else
            // is some other file.
            if !header.starts_with(&bytes) {
                return Err(JournalError::BadMagic {
                    path: self.path.display().to_string(),
                });
            }
            if !bytes.is_empty() {
                self.progress.add("torn_bytes", bytes.len() as u64);
            }
            self.file.set_len(0).map_err(|e| io_err(&self.path, e))?;
            self.file
                .write_all(&header)
                .map_err(|e| io_err(&self.path, e))?;
            self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
            return Ok(());
        }
        if bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(JournalError::BadMagic {
                path: self.path.display().to_string(),
            });
        }
        let mut r = WireReader::new(&bytes[JOURNAL_MAGIC.len()..JOURNAL_HEADER_LEN]);
        let schema = r.u32().expect("header length checked");
        let found_config = r.u64().expect("header length checked");
        if schema != JOURNAL_SCHEMA {
            return Err(JournalError::SchemaMismatch {
                found: schema,
                expected: JOURNAL_SCHEMA,
            });
        }
        if found_config != self.config_hash {
            return Err(JournalError::ConfigMismatch {
                found: found_config,
                expected: self.config_hash,
            });
        }

        let mut pos = JOURNAL_HEADER_LEN;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < 4 {
                // Torn length prefix: the crash hit inside the first
                // four bytes of an append. Truncate to the record start.
                return self.truncate_tail(pos, remaining);
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if !(RECORD_OVERHEAD..=MAX_RECORD_LEN).contains(&len) {
                // The prefix is written first inside a single append,
                // so a present-but-impossible length is corruption,
                // not a torn write.
                return Err(JournalError::Corrupt {
                    offset: pos as u64,
                    reason: format!(
                        "record length {len} outside [{RECORD_OVERHEAD}, {MAX_RECORD_LEN}]"
                    ),
                });
            }
            if remaining - 4 < len {
                // Torn payload: record runs past EOF.
                return self.truncate_tail(pos, remaining);
            }
            let payload = &bytes[pos + 4..pos + 4 + len];
            let mut r = WireReader::new(payload);
            let cell_key = r.u64().expect("length checked");
            let content_hash = r.u64().expect("length checked");
            let result = r.bytes(len - RECORD_OVERHEAD).expect("length checked");
            if fnv1a64(result) != content_hash {
                return Err(JournalError::Corrupt {
                    offset: pos as u64,
                    reason: format!("content hash mismatch for cell {cell_key:#018x}"),
                });
            }
            match self.completed.get(&cell_key) {
                // Two processes may legally commit the same cell; the
                // determinism contract makes the bytes identical.
                Some(existing) if existing.as_slice() == result => {}
                Some(_) => {
                    return Err(JournalError::Corrupt {
                        offset: pos as u64,
                        reason: format!(
                            "cell {cell_key:#018x} recorded twice with different contents"
                        ),
                    });
                }
                None => {
                    self.completed.insert(cell_key, result.to_vec());
                }
            }
            pos += 4 + len;
        }
        Ok(())
    }

    /// Truncates a torn tail: drops `torn` bytes so the file ends at
    /// `valid_end`, the start of the half-written record.
    fn truncate_tail(&mut self, valid_end: usize, torn: usize) -> Result<(), JournalError> {
        self.progress.add("torn_bytes", torn as u64);
        self.file
            .set_len(valid_end as u64)
            .map_err(|e| io_err(&self.path, e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        Ok(())
    }

    /// Commits one cell's result: a single locked, `O_APPEND`,
    /// `sync_data`'d write of the complete record, then releases the
    /// cell's claim if this process held one.
    ///
    /// # Errors
    ///
    /// [`JournalError::Oversized`] when the payload exceeds
    /// [`MAX_RECORD_LEN`], [`JournalError::Io`] on write failures.
    pub fn append(&mut self, cell_key: u64, result: &[u8]) -> Result<(), JournalError> {
        let payload_len = RECORD_OVERHEAD + result.len();
        if payload_len > MAX_RECORD_LEN {
            return Err(JournalError::Oversized { len: payload_len });
        }
        if let Some(existing) = self.completed.get(&cell_key) {
            debug_assert_eq!(
                existing.as_slice(),
                result,
                "determinism violation: cell {cell_key:#018x} recomputed with different bytes"
            );
            self.release(cell_key);
            return Ok(());
        }
        let mut record = Vec::with_capacity(4 + payload_len);
        put::u32(&mut record, payload_len as u32);
        put::u64(&mut record, cell_key);
        put::u64(&mut record, fnv1a64(result));
        record.extend_from_slice(result);

        self.file.lock().map_err(|e| io_err(&self.path, e))?;
        let write = self
            .file
            .write_all(&record)
            .and_then(|()| self.file.sync_data());
        let _ = self.file.unlock();
        write.map_err(|e| io_err(&self.path, e))?;

        self.completed.insert(cell_key, result.to_vec());
        self.progress.add("computed", 1);
        self.release(cell_key);
        Ok(())
    }

    /// Tries to claim `cell_key` for this process via an exclusive
    /// advisory lock on the cell's sidecar file. Returns `false` when
    /// another process (or another journal handle) holds the claim.
    /// Claims are released by [`Journal::append`], [`Journal::release`],
    /// or automatically when the process dies.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the sidecar file cannot be created.
    pub fn try_claim(&mut self, cell_key: u64) -> Result<bool, JournalError> {
        if self.claims.contains_key(&cell_key) {
            return Ok(true);
        }
        let lock_path = self.claims_dir.join(format!("cell-{cell_key:016x}.lock"));
        let lock_file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&lock_path)
            .map_err(|e| io_err(&lock_path, e))?;
        match lock_file.try_lock() {
            Ok(()) => {
                self.claims.insert(cell_key, lock_file);
                Ok(true)
            }
            Err(std::fs::TryLockError::WouldBlock) => Ok(false),
            Err(std::fs::TryLockError::Error(e)) => Err(io_err(&lock_path, e)),
        }
    }

    /// Releases a claim held by this process (no-op otherwise).
    pub fn release(&mut self, cell_key: u64) {
        if let Some(lock_file) = self.claims.remove(&cell_key) {
            let _ = lock_file.unlock();
        }
    }
}

/// Writes `contents` to `path` atomically: the bytes go to a temp file
/// in the same directory (same filesystem, so `rename` is atomic),
/// are synced, and the temp file is renamed over the target. A crash
/// at any point leaves either the old committed file or the new one —
/// never a truncated hybrid.
///
/// # Errors
///
/// Propagates filesystem failures; the temp file is removed on error.
pub fn atomic_write(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "atomic_write needs a file name",
            )
        })?
        .to_string_lossy()
        .into_owned();
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let commit = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(contents)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)
    })();
    if commit.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    commit
}

/// Runs a cell grid to completion against `journal`: already-committed
/// cells are skipped, pending ones are claimed and computed in
/// parallel on `runner`, and cells claimed by a cooperating process
/// are waited out rather than recomputed. Returns every cell's result
/// bytes in the order of `cells` — always decoded from the journal, so
/// the readout does not depend on which process computed what.
///
/// `worker` maps a task to its serialized result; it must be a pure
/// function of the task (the journal's determinism contract).
///
/// # Errors
///
/// [`JournalError::Task`] wraps the first worker failure; the other
/// variants surface journal I/O and integrity problems.
pub fn run_journaled<T, F>(
    journal: &mut Journal,
    runner: &SweepRunner,
    cells: &[(u64, T)],
    worker: F,
) -> Result<Vec<Vec<u8>>, JournalError>
where
    T: Sync,
    F: Fn(&T) -> Result<Vec<u8>, String> + Sync,
{
    let resumed = cells
        .iter()
        .filter(|(key, _)| journal.is_done(*key))
        .count() as u64;
    journal.progress.add("resumed", resumed);
    let mut computed = 0u64;
    loop {
        let pending: Vec<&(u64, T)> = cells
            .iter()
            .filter(|(key, _)| !journal.is_done(*key))
            .collect();
        if pending.is_empty() {
            break;
        }
        // Claim at most one round of work (`jobs` cells) so each round
        // commits before the next is claimed: a crash loses at most one
        // round of computation, and cooperating processes can claim the
        // cells this one leaves unclaimed.
        let round = runner.jobs().max(1);
        let mut claimed: Vec<&(u64, T)> = Vec::new();
        for cell in pending {
            if claimed.len() == round {
                break;
            }
            if journal.try_claim(cell.0)? {
                claimed.push(cell);
            }
        }
        if claimed.is_empty() {
            // Every pending cell is claimed by a cooperating process;
            // wait for its appends to land and rescan.
            std::thread::sleep(std::time::Duration::from_millis(20));
            journal.refresh()?;
            continue;
        }
        // A peer may have committed a cell between our scan and claim.
        journal.refresh()?;
        let mut work: Vec<&(u64, T)> = Vec::new();
        for cell in claimed {
            if journal.is_done(cell.0) {
                journal.release(cell.0);
            } else {
                work.push(cell);
            }
        }
        let results = runner.run(&work, |_, cell| worker(&cell.1));
        for (cell, result) in work.iter().zip(results) {
            let bytes = result.map_err(JournalError::Task)?;
            journal.append(cell.0, &bytes)?;
            computed += 1;
        }
        journal.refresh()?;
    }
    let ceded = (cells.len() as u64).saturating_sub(resumed + computed);
    journal.progress.add("ceded", ceded);
    cells
        .iter()
        .map(|(key, _)| {
            journal
                .result(*key)
                .map(<[u8]>::to_vec)
                .ok_or_else(|| JournalError::Corrupt {
                    offset: 0,
                    reason: format!("cell {key:#018x} missing after completed sweep"),
                })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Wire codecs for journal payloads. Integers and IEEE-754 bits only —
// byte-exact round trips, so a journal-resumed readout is bit-identical
// to the in-memory value it recorded.

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put::u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut WireReader<'_>) -> Result<String, WireError> {
    let len = r.u32()? as usize;
    let bytes = r.bytes(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadEnum {
        what: "utf-8 string",
        value: 0,
    })
}

fn put_counts(buf: &mut Vec<u8>, c: &PredictionCounts) {
    put::u64(buf, c.opportunities);
    put::u64(buf, c.hit_primary);
    put::u64(buf, c.hit_backup);
    put::u64(buf, c.miss_primary);
    put::u64(buf, c.miss_backup);
    put::u64(buf, c.not_predicted);
}

fn get_counts(r: &mut WireReader<'_>) -> Result<PredictionCounts, WireError> {
    Ok(PredictionCounts {
        opportunities: r.u64()?,
        hit_primary: r.u64()?,
        hit_backup: r.u64()?,
        miss_primary: r.u64()?,
        miss_backup: r.u64()?,
        not_predicted: r.u64()?,
    })
}

fn put_energy(buf: &mut Vec<u8>, e: &EnergyBreakdown) {
    put::f64(buf, e.busy.0);
    put::f64(buf, e.idle_short.0);
    put::f64(buf, e.idle_long.0);
    put::f64(buf, e.power_cycle.0);
}

fn get_energy(r: &mut WireReader<'_>) -> Result<EnergyBreakdown, WireError> {
    Ok(EnergyBreakdown {
        busy: Joules(r.f64()?),
        idle_short: Joules(r.f64()?),
        idle_long: Joules(r.f64()?),
        power_cycle: Joules(r.f64()?),
    })
}

/// Appends one [`AppReport`] to `buf` (no framing).
pub fn put_report(buf: &mut Vec<u8>, report: &AppReport) {
    put_str(buf, &report.app);
    put_str(buf, &report.manager);
    put_counts(buf, &report.local);
    put_counts(buf, &report.global);
    put_energy(buf, &report.energy);
    put_energy(buf, &report.base_energy);
    put::option(buf, report.table_entries.map(|n| n as u64), put::u64);
    put::option(buf, report.table_aliases, put::u64);
}

/// Reads one [`AppReport`] from `r`, the inverse of [`put_report`].
///
/// # Errors
///
/// [`WireError`] on truncation or malformed fields.
pub fn get_report(r: &mut WireReader<'_>) -> Result<AppReport, WireError> {
    Ok(AppReport {
        app: Arc::from(get_str(r)?.as_str()),
        manager: get_str(r)?,
        local: get_counts(r)?,
        global: get_counts(r)?,
        energy: get_energy(r)?,
        base_energy: get_energy(r)?,
        table_entries: r.option(WireReader::u64)?.map(|n| n as usize),
        table_aliases: r.option(WireReader::u64)?,
    })
}

/// Encodes a list of [`AppReport`]s as one journal result payload.
pub fn encode_reports(reports: &[AppReport]) -> Vec<u8> {
    let mut buf = Vec::new();
    put::u32(&mut buf, reports.len() as u32);
    for report in reports {
        put_report(&mut buf, report);
    }
    buf
}

/// Decodes a payload written by [`encode_reports`].
///
/// # Errors
///
/// [`WireError`] on truncation, malformed fields, or trailing bytes.
pub fn decode_reports(bytes: &[u8]) -> Result<Vec<AppReport>, WireError> {
    let mut r = WireReader::new(bytes);
    let count = r.u32()? as usize;
    let mut reports = Vec::with_capacity(count);
    for _ in 0..count {
        reports.push(get_report(&mut r)?);
    }
    r.finish()?;
    Ok(reports)
}

fn put_slot(buf: &mut Vec<u8>, slot: &FleetSlot) {
    put::u64(buf, slot.devices);
    put::u64(buf, slot.runs);
    put::u64(buf, slot.accesses);
    put_counts(buf, &slot.local);
    put_counts(buf, &slot.global);
    put_energy(buf, &slot.energy);
    put_energy(buf, &slot.base_energy);
    put::u64(buf, slot.table_entries);
    put::u64(buf, slot.table_aliases);
}

fn get_slot(r: &mut WireReader<'_>) -> Result<FleetSlot, WireError> {
    Ok(FleetSlot {
        devices: r.u64()?,
        runs: r.u64()?,
        accesses: r.u64()?,
        local: get_counts(r)?,
        global: get_counts(r)?,
        energy: get_energy(r)?,
        base_energy: get_energy(r)?,
        table_entries: r.u64()?,
        table_aliases: r.u64()?,
    })
}

/// Encodes a fleet chunk's six per-app slots as one journal payload.
pub fn encode_fleet_slots(slots: &[FleetSlot; 6]) -> Vec<u8> {
    let mut buf = Vec::new();
    for slot in slots {
        put_slot(&mut buf, slot);
    }
    buf
}

/// Decodes a payload written by [`encode_fleet_slots`].
///
/// # Errors
///
/// [`WireError`] on truncation or trailing bytes.
pub fn decode_fleet_slots(bytes: &[u8]) -> Result<[FleetSlot; 6], WireError> {
    let mut r = WireReader::new(bytes);
    let mut slots = [FleetSlot::default(); 6];
    for slot in &mut slots {
        *slot = get_slot(&mut r)?;
    }
    r.finish()?;
    Ok(slots)
}

/// The config hash a fleet sweep journal is pinned to: device count,
/// base seed, per-device run cap, manager, and the chunking constant.
pub fn fleet_journal_config(
    devices: u64,
    base_seed: u64,
    max_runs: Option<usize>,
    kind: PowerManagerKind,
) -> u64 {
    let mut hash = pcap_workload::ConfigHash::new("fleet-sweep");
    hash.push(devices);
    hash.push(base_seed);
    hash.push(u64::from(max_runs.is_some()));
    hash.push(max_runs.unwrap_or(0) as u64);
    hash.push_str(&kind.label());
    hash.push(FLEET_CHUNK);
    hash.finish()
}

/// [`crate::sweep_fleet`] against a journal: chunks already committed
/// are decoded instead of recomputed, pending chunks are claimed via
/// the journal's advisory locks (so concurrent or restarted processes
/// cooperate), and the merged [`FleetReport`] is built from journal
/// bytes in chunk order — byte-identical to an uninterrupted
/// single-process run for any `--jobs` value.
///
/// # Errors
///
/// [`JournalError`] on journal I/O or integrity failures, with
/// [`JournalError::Task`] wrapping trace-generation errors.
pub fn sweep_fleet_journaled(
    pop: &DevicePopulation,
    config: &SimConfig,
    kind: PowerManagerKind,
    runner: &SweepRunner,
    max_runs: Option<usize>,
    journal: &mut Journal,
) -> Result<FleetReport, JournalError> {
    let devices = pop.devices();
    let mut cells: Vec<(u64, (u64, u64))> = Vec::new();
    let mut start = 0;
    while start < devices {
        let end = (start + FLEET_CHUNK).min(devices);
        cells.push((fleet_cell_key(start, end), (start, end)));
        start = end;
    }
    let results = run_journaled(journal, runner, &cells, |&(start, end)| {
        let mut worker = StreamWorker::new(config, kind);
        let mut slots = [FleetSlot::default(); 6];
        for device in start..end {
            let outcome = worker
                .evaluate_device(pop, device, max_runs)
                .map_err(|e| e.to_string())?;
            slots[(device % 6) as usize].absorb(&outcome);
        }
        Ok(encode_fleet_slots(&slots))
    })?;
    let mut per_app = [FleetSlot::default(); 6];
    for (index, bytes) in results.iter().enumerate() {
        let slots = decode_fleet_slots(bytes).map_err(|e| JournalError::Corrupt {
            offset: 0,
            reason: format!("chunk {index} payload: {e}"),
        })?;
        for (into, from) in per_app.iter_mut().zip(slots.iter()) {
            into.merge(from);
        }
    }
    let mut total = FleetSlot::default();
    for slot in &per_app {
        total.merge(slot);
    }
    Ok(FleetReport {
        devices,
        base_seed: pop.base_seed(),
        manager: kind.label(),
        max_runs,
        per_app: per_app.to_vec(),
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pcap-journal-{tag}-{}.jnl", std::process::id()))
    }

    fn cleanup(path: &Path) {
        let _ = fs::remove_file(path);
        let _ = fs::remove_dir_all(format!("{}.claims", path.display()));
    }

    #[test]
    fn empty_journal_round_trips_records() {
        let path = temp_journal("roundtrip");
        cleanup(&path);
        let mut j = Journal::open(&path, 0xfeed).unwrap();
        j.append(1, b"one").unwrap();
        j.append(2, b"two").unwrap();
        drop(j);
        let j = Journal::open(&path, 0xfeed).unwrap();
        assert_eq!(j.result(1), Some(&b"one"[..]));
        assert_eq!(j.result(2), Some(&b"two"[..]));
        assert_eq!(j.completed_cells(), 2);
        assert!(!j.is_done(3));
        cleanup(&path);
    }

    #[test]
    fn config_mismatch_is_a_named_error() {
        let path = temp_journal("config");
        cleanup(&path);
        drop(Journal::open(&path, 111).unwrap());
        let err = Journal::open(&path, 222).unwrap_err();
        assert!(
            matches!(
                err,
                JournalError::ConfigMismatch {
                    found: 111,
                    expected: 222
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("config mismatch"), "{err}");
        cleanup(&path);
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        let path = temp_journal("magic");
        cleanup(&path);
        fs::write(&path, b"definitely not a journal").unwrap();
        let err = Journal::open(&path, 0).unwrap_err();
        assert!(matches!(err, JournalError::BadMagic { .. }), "{err}");
        cleanup(&path);
    }

    #[test]
    fn torn_tail_truncates_and_mid_file_corruption_fails() {
        let path = temp_journal("torn");
        cleanup(&path);
        let mut j = Journal::open(&path, 7).unwrap();
        j.append(10, b"first-record").unwrap();
        j.append(11, b"second-record").unwrap();
        drop(j);
        let full = fs::read(&path).unwrap();
        // Chop the last record anywhere: recovery keeps record one.
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        let j = Journal::open(&path, 7).unwrap();
        assert!(j.is_done(10));
        assert!(!j.is_done(11));
        assert!(j.progress().snapshot().torn_bytes > 0);
        drop(j);
        // Flip a result byte mid-file: that is corruption, not a tear.
        let mut bad = full.clone();
        let flip = JOURNAL_HEADER_LEN + 4 + RECORD_OVERHEAD; // first result byte
        bad[flip] ^= 0xff;
        fs::write(&path, &bad).unwrap();
        let err = Journal::open(&path, 7).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("hash mismatch"), "{err}");
        cleanup(&path);
    }

    #[test]
    fn oversized_append_is_rejected() {
        let path = temp_journal("oversized");
        cleanup(&path);
        let mut j = Journal::open(&path, 1).unwrap();
        let huge = vec![0u8; MAX_RECORD_LEN];
        let err = j.append(5, &huge).unwrap_err();
        assert!(matches!(err, JournalError::Oversized { .. }), "{err}");
        // The failed append committed nothing.
        drop(j);
        let j = Journal::open(&path, 1).unwrap();
        assert_eq!(j.completed_cells(), 0);
        cleanup(&path);
    }

    #[test]
    fn claims_exclude_between_handles_and_release() {
        // Two journal handles in one process: flock is per open file
        // description, so this models two cooperating processes.
        let path = temp_journal("claims");
        cleanup(&path);
        let mut a = Journal::open(&path, 9).unwrap();
        let mut b = Journal::open(&path, 9).unwrap();
        assert!(a.try_claim(1).unwrap());
        assert!(!b.try_claim(1).unwrap(), "claim must exclude peer");
        assert!(b.try_claim(2).unwrap(), "other cells stay claimable");
        a.release(1);
        assert!(b.try_claim(1).unwrap(), "released claim is claimable");
        // Append through b; a sees it after refresh.
        b.append(1, b"done").unwrap();
        assert!(!a.is_done(1));
        a.refresh().unwrap();
        assert_eq!(a.result(1), Some(&b"done"[..]));
        cleanup(&path);
    }

    #[test]
    fn run_journaled_resumes_and_two_handles_cooperate() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let path = temp_journal("cooperate");
        cleanup(&path);
        let cells: Vec<(u64, u64)> = (0..16u64).map(|i| (i + 100, i)).collect();
        let work = |task: &u64| Ok(task.to_le_bytes().to_vec());
        let runner = SweepRunner::new(2);

        // First pass: compute half, then "crash" (drop the journal).
        let mut j = Journal::open(&path, 55).unwrap();
        for cell in &cells[..8] {
            j.append(cell.0, &cell.1.to_le_bytes()).unwrap();
        }
        drop(j);

        // Resume: only the remaining half is computed.
        let computed = AtomicU64::new(0);
        let mut j = Journal::open(&path, 55).unwrap();
        let results = run_journaled(&mut j, &runner, &cells, |task| {
            computed.fetch_add(1, Ordering::Relaxed);
            work(task)
        })
        .unwrap();
        assert_eq!(computed.load(Ordering::Relaxed), 8);
        let snapshot = j.progress().snapshot();
        assert_eq!(snapshot.resumed, 8);
        assert_eq!(snapshot.computed, 8);
        assert_eq!(
            results,
            (0..16u64)
                .map(|i| i.to_le_bytes().to_vec())
                .collect::<Vec<_>>()
        );

        // A second handle over the finished journal computes nothing.
        let mut j2 = Journal::open(&path, 55).unwrap();
        let recomputed = AtomicU64::new(0);
        let results2 = run_journaled(&mut j2, &runner, &cells, |task| {
            recomputed.fetch_add(1, Ordering::Relaxed);
            work(task)
        })
        .unwrap();
        assert_eq!(recomputed.load(Ordering::Relaxed), 0);
        assert_eq!(results2, results);
        cleanup(&path);
    }

    #[test]
    fn report_codec_is_bit_exact() {
        let report = AppReport {
            app: Arc::from("nedit"),
            manager: "PCAPh".to_owned(),
            local: PredictionCounts {
                opportunities: 10,
                hit_primary: 4,
                hit_backup: 3,
                miss_primary: 2,
                miss_backup: 1,
                not_predicted: 0,
            },
            global: PredictionCounts::default(),
            energy: EnergyBreakdown {
                busy: Joules(1.25),
                idle_short: Joules(-0.0),
                idle_long: Joules(f64::MIN_POSITIVE),
                power_cycle: Joules(3.5e300),
            },
            base_energy: EnergyBreakdown::default(),
            table_entries: Some(17),
            table_aliases: None,
        };
        let bytes = encode_reports(std::slice::from_ref(&report));
        let decoded = decode_reports(&bytes).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0], report);
        // -0.0 survives as -0.0 (bit-exact, not value-equal).
        assert_eq!(
            decoded[0].energy.idle_short.0.to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn fleet_slot_codec_round_trips() {
        let mut slots = [FleetSlot::default(); 6];
        slots[2].devices = 5;
        slots[2].runs = 40;
        slots[2].energy.busy = Joules(0.1 + 0.2); // a non-representable sum
        slots[5].table_aliases = u64::MAX;
        let bytes = encode_fleet_slots(&slots);
        assert_eq!(decode_fleet_slots(&bytes).unwrap(), slots);
        // Trailing garbage is an error, not a silent pass.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_fleet_slots(&padded).is_err());
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("pcap-atomic-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("artifact.json");
        atomic_write(&target, b"v1").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"v1");
        atomic_write(&target, b"v2-longer").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"v2-longer");
        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_atomic_write_never_truncates_the_committed_file() {
        let dir = std::env::temp_dir().join(format!("pcap-atomic-crash-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("golden.csv");
        atomic_write(&target, b"complete-v1").unwrap();
        // A writer that dies mid-write leaves only a partial temp file:
        // the committed target is never opened for writing, so it can
        // never be observed truncated.
        let tmp = dir.join(format!(".golden.csv.tmp.{}", std::process::id()));
        fs::write(&tmp, b"par").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"complete-v1");
        // A retry commits cleanly over both target and stale temp.
        atomic_write(&target, b"complete-v2").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"complete-v2");
        assert!(!tmp.exists(), "retry must reclaim the stale temp file");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_journal_config_distinguishes_sweeps() {
        let base = fleet_journal_config(100, 42, None, PowerManagerKind::PCAP);
        assert_eq!(
            base,
            fleet_journal_config(100, 42, None, PowerManagerKind::PCAP)
        );
        assert_ne!(
            base,
            fleet_journal_config(101, 42, None, PowerManagerKind::PCAP)
        );
        assert_ne!(
            base,
            fleet_journal_config(100, 43, None, PowerManagerKind::PCAP)
        );
        assert_ne!(
            base,
            fleet_journal_config(100, 42, Some(6), PowerManagerKind::PCAP)
        );
        assert_ne!(
            base,
            fleet_journal_config(100, 42, None, PowerManagerKind::Timeout)
        );
    }
}
