//! Predictor-independent workload profiling — the simulator half of
//! Table 1 (idle-period counts exist only after cache filtering).

use crate::prepared::PreparedTrace;
use crate::SimConfig;
use pcap_trace::ApplicationTrace;
use serde::{Deserialize, Serialize};

/// The Table 1 row of one application, measured from its trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Application name (shared with the source trace).
    pub app: std::sync::Arc<str>,
    /// Number of traced executions.
    pub executions: usize,
    /// Idle periods (merged stream) longer than breakeven — Table 1
    /// "Global".
    pub global_idle_periods: usize,
    /// Idle periods summed over per-process streams — Table 1 "Local".
    pub local_idle_periods: usize,
    /// Traced I/O operations — Table 1 "Total I/Os".
    pub total_ios: usize,
    /// Physical disk accesses after the file cache.
    pub disk_accesses: usize,
    /// File-cache page hit rate across all executions.
    pub cache_hit_rate: f64,
}

impl WorkloadProfile {
    /// Profiles a trace under the given simulation configuration,
    /// preparing its streams internally. Callers that already hold a
    /// [`PreparedTrace`] should use
    /// [`of_prepared`](Self::of_prepared) and share the preparation.
    pub fn measure(trace: &ApplicationTrace, config: &SimConfig) -> WorkloadProfile {
        Self::of_prepared(&PreparedTrace::build(trace, config), config)
    }

    /// Profiles an already-prepared trace; identical to
    /// [`measure`](Self::measure) on the trace it was prepared from.
    pub fn of_prepared(prepared: &PreparedTrace, config: &SimConfig) -> WorkloadProfile {
        let be = config.disk.breakeven_time();
        let mut profile = WorkloadProfile {
            app: std::sync::Arc::clone(prepared.app()),
            executions: prepared.len(),
            global_idle_periods: 0,
            local_idle_periods: 0,
            total_ios: prepared.total_ios(),
            disk_accesses: 0,
            cache_hit_rate: 0.0,
        };
        let mut hits = 0u64;
        let mut lookups = 0u64;
        for s in prepared.streams() {
            profile.global_idle_periods += s.global_opportunities(be);
            profile.local_idle_periods += s.local_opportunities(be);
            profile.disk_accesses += s.accesses.len();
            hits += s.cache_stats.page_hits;
            lookups += s.cache_stats.page_hits + s.cache_stats.page_misses;
        }
        if lookups > 0 {
            profile.cache_hit_rate = hits as f64 / lookups as f64;
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_trace::TraceRunBuilder;
    use pcap_types::{Fd, FileId, IoKind, Pc, Pid, SimTime};

    #[test]
    fn profile_counts() {
        let mut trace = ApplicationTrace::new("p");
        for _ in 0..2 {
            let mut b = TraceRunBuilder::new(Pid(1));
            // Two reads of the same page: second is a cache hit.
            for (t, offset) in [(1.0f64, 0u64), (2.0, 0)] {
                b.io(
                    SimTime::from_secs_f64(t),
                    Pid(1),
                    Pc(0x1),
                    IoKind::Read,
                    Fd(3),
                    FileId(1),
                    offset,
                    4096,
                );
            }
            b.exit(SimTime::from_secs(30), Pid(1));
            trace.runs.push(b.finish().unwrap());
        }
        let p = WorkloadProfile::measure(&trace, &SimConfig::paper());
        assert_eq!(p.executions, 2);
        assert_eq!(p.total_ios, 4);
        assert_eq!(p.disk_accesses, 2, "hits filtered by the cache");
        // Terminal gaps of ≈28 s are the only long idle periods.
        assert_eq!(p.global_idle_periods, 2);
        assert_eq!(p.local_idle_periods, 2);
        assert!((p.cache_hit_rate - 0.5).abs() < 1e-12);
    }
}
