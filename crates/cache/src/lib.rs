//! Linux-like file cache simulator.
//!
//! The paper's evaluation filters every traced I/O operation through a
//! model of the Linux file cache: "The file cache size is 256 Kbytes. We
//! use the LRU mechanism for cache replacement and the default timer of
//! 30 seconds between cache flushes of dirty data. … only cache misses
//! are treated as actual disk accesses" (§6).
//!
//! [`FileCache`] reproduces that model: a 4 KB-page LRU cache with
//! write-back dirty pages flushed by a periodic daemon. Feeding it a
//! time-ordered stream of [`IoEvent`]s yields the stream of
//! [`DiskAccess`]es the power manager actually observes.
//!
//! # Example
//!
//! ```
//! use pcap_cache::{CacheConfig, FileCache};
//! use pcap_types::{Fd, FileId, IoEvent, IoKind, Pc, Pid, SimTime};
//!
//! let mut cache = FileCache::new(CacheConfig::paper());
//! let read = IoEvent {
//!     time: SimTime::from_secs(1),
//!     pid: Pid(1),
//!     pc: Pc(0x42),
//!     kind: IoKind::Read,
//!     fd: Fd(3),
//!     file: FileId(7),
//!     offset: 0,
//!     len: 8192,
//! };
//! let cold = cache.access(&read);
//! assert_eq!(cold.len(), 1); // one coalesced 2-page miss
//! assert_eq!(cold[0].pages, 2);
//! let warm = cache.access(&IoEvent { time: SimTime::from_secs(2), ..read });
//! assert!(warm.is_empty()); // served from cache
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prefetch;

pub use pcap_types::LruMap;
pub use prefetch::{PcReadahead, ReadaheadConfig};

use pcap_types::{DiskAccess, Fd, FileId, IoEvent, IoKind, Pid, SimDuration, SimTime, TraceEvent};
use serde::{Deserialize, Serialize};

/// Configuration of the file cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Page size in bytes.
    pub page_size: u64,
    /// Age at which a dirty page is written back (the "default timer of
    /// 30 seconds": Linux's dirty_expire interval).
    pub flush_interval: SimDuration,
    /// How often the flush daemon wakes to look for expired pages
    /// (Linux's writeback wakeup; 5 s).
    pub flush_wakeup: SimDuration,
    /// If true, writes bypass the dirty mechanism and hit the disk
    /// immediately (used by the flush-policy ablation).
    pub write_through: bool,
    /// PC-based readahead (§7 future work; `None` = the paper's plain
    /// demand-fetch cache).
    pub readahead: Option<ReadaheadConfig>,
}

impl CacheConfig {
    /// The paper's configuration: 256 KB, 4 KB pages, 30 s flush timer,
    /// write-back.
    pub fn paper() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 256 * 1024,
            page_size: 4096,
            flush_interval: SimDuration::from_secs(30),
            flush_wakeup: SimDuration::from_secs(5),
            write_through: false,
            readahead: None,
        }
    }

    /// Number of pages the cache holds.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_bytes / self.page_size
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper()
    }
}

/// Counters describing cache behaviour over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Pages served from the cache.
    pub page_hits: u64,
    /// Pages that had to be read from disk.
    pub page_misses: u64,
    /// Pages written back by the flush daemon.
    pub flushed_pages: u64,
    /// Flush-daemon wakeups that found dirty data.
    pub flush_runs: u64,
    /// Pages evicted (clean or dirty).
    pub evictions: u64,
    /// Dirty pages written back at eviction time.
    pub eviction_writebacks: u64,
    /// Pages fetched ahead of demand by PC-based readahead.
    pub prefetched_pages: u64,
}

impl CacheStats {
    /// Hit rate over data pages (0.0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.page_hits + self.page_misses;
        if total == 0 {
            0.0
        } else {
            self.page_hits as f64 / total as f64
        }
    }
}

/// Per-page cache state.
#[derive(Debug, Clone, Copy)]
struct PageState {
    dirty: bool,
    /// Process that dirtied the page (flush accesses are attributed to
    /// the kernel PC but keep the pid for accounting).
    dirtied_by: Pid,
    /// When the page was dirtied (drives age-based write-back).
    dirtied_at: SimTime,
}

/// Cache key: one 4 KB page of one file.
type PageKey = (FileId, u64);

/// The file cache simulator; see the [crate docs](crate) for an example.
///
/// Events must be fed in non-decreasing time order (as produced by
/// [`pcap-trace`](https://docs.rs/pcap-trace) builders).
#[derive(Debug, Clone)]
pub struct FileCache {
    config: CacheConfig,
    pages: LruMap<PageKey, PageState>,
    stats: CacheStats,
    readahead: Option<PcReadahead>,
    /// Flush ticks processed so far (tick k fires at k·interval).
    ticks_done: u64,
    last_event_time: SimTime,
}

impl FileCache {
    /// Creates an empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration holds zero pages.
    pub fn new(config: CacheConfig) -> FileCache {
        let capacity = config.capacity_pages() as usize;
        assert!(capacity > 0, "cache must hold at least one page");
        let readahead = config.readahead.map(PcReadahead::new);
        FileCache {
            config,
            pages: LruMap::new(capacity),
            stats: CacheStats::default(),
            readahead,
            ticks_done: 0,
            last_event_time: SimTime::ZERO,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Returns the cache to its cold state while keeping every allocated
    /// capacity (page map, readahead tables), so one cache instance can
    /// filter an unbounded stream of runs without per-run allocation.
    ///
    /// A reset cache is behaviorally indistinguishable from
    /// [`FileCache::new`] with the same configuration.
    pub fn reset(&mut self) {
        self.pages.clear();
        self.stats = CacheStats::default();
        if let Some(ra) = self.readahead.as_mut() {
            ra.clear();
        }
        self.ticks_done = 0;
        self.last_event_time = SimTime::ZERO;
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of pages currently cached.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of dirty pages currently cached.
    pub fn dirty_pages(&self) -> usize {
        self.pages.iter().filter(|(_, s)| s.dirty).count()
    }

    /// Runs pending flush-daemon wakeups up to (and including) `now`;
    /// each wakeup writes back the pages that have been dirty for at
    /// least the flush interval (age-based write-back, as in Linux).
    fn run_flush_ticks(&mut self, now: SimTime, out: &mut Vec<DiskAccess>) {
        let wakeup = self.config.flush_wakeup.as_micros();
        if wakeup == 0 {
            return;
        }
        let due = now.as_micros() / wakeup;
        while self.ticks_done < due {
            self.ticks_done += 1;
            let tick_time = SimTime::from_micros(self.ticks_done * wakeup);
            if let Some(access) = self.flush_expired(tick_time) {
                self.stats.flush_runs += 1;
                out.push(access);
            }
        }
    }

    /// Cleans the dirty pages older than the flush interval, returning
    /// one coalesced kernel write access (or `None` if none expired).
    ///
    /// The access is attributed to the process that dirtied the oldest
    /// expired page, oldest `(dirtied_at, key)` first — a deterministic
    /// choice (hash-map iteration order must never leak into simulation
    /// results). Two passes over the page map instead of a sorted
    /// scratch vector keep this allocation-free on the streaming path.
    fn flush_expired(&mut self, time: SimTime) -> Option<DiskAccess> {
        let expire = self.config.flush_interval;
        let mut oldest: Option<(SimTime, PageKey, Pid)> = None;
        let mut pages = 0u32;
        for (key, state) in self.pages.iter() {
            if state.dirty && time.saturating_since(state.dirtied_at) >= expire {
                pages += 1;
                let candidate = (state.dirtied_at, *key);
                if oldest.is_none_or(|(at, k, _)| candidate < (at, k)) {
                    oldest = Some((state.dirtied_at, *key, state.dirtied_by));
                }
            }
        }
        let (_, _, pid) = oldest?;
        for (_, state) in self.pages.iter_mut() {
            if state.dirty && time.saturating_since(state.dirtied_at) >= expire {
                state.dirty = false;
            }
        }
        self.stats.flushed_pages += u64::from(pages);
        Some(DiskAccess {
            time,
            pid,
            pc: DiskAccess::KERNEL_PC,
            fd: Fd(0),
            kind: IoKind::Write,
            pages,
        })
    }

    /// Inserts `key`, evicting the LRU page if full; a dirty victim
    /// produces a write-back access at `time`.
    fn insert_page(
        &mut self,
        key: PageKey,
        state: PageState,
        time: SimTime,
        out: &mut Vec<DiskAccess>,
    ) {
        if let Some((_, victim)) = self.pages.insert(key, state) {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.eviction_writebacks += 1;
                out.push(DiskAccess {
                    time,
                    pid: victim.dirtied_by,
                    pc: DiskAccess::KERNEL_PC,
                    fd: Fd(0),
                    kind: IoKind::Write,
                    pages: 1,
                });
            }
        }
    }

    /// The page range `[first, last]` touched by an I/O event.
    fn page_range(&self, io: &IoEvent) -> (u64, u64) {
        let first = io.offset / self.config.page_size;
        let last = if io.len == 0 {
            first
        } else {
            (io.offset + io.len - 1) / self.config.page_size
        };
        (first, last)
    }

    /// Feeds one I/O event through the cache, returning the disk
    /// accesses it causes (flush-daemon write-backs due before the
    /// event, miss reads, write-through or eviction writes).
    ///
    /// * `Read`: missing pages are read from disk (contiguous misses
    ///   coalesce into one access); present pages are LRU-touched.
    /// * `Write`: pages are write-allocated without a disk read and
    ///   marked dirty (flushed later), or written straight to disk when
    ///   [`CacheConfig::write_through`] is set.
    /// * `SyncWrite`: the write reaches the disk immediately (editor
    ///   `fsync` semantics) and the pages are cached clean.
    /// * `Open`: modeled as a one-page metadata read of the file.
    /// * `Close`: no disk traffic.
    ///
    /// # Panics
    ///
    /// Panics if events go backwards in time.
    pub fn access(&mut self, io: &IoEvent) -> Vec<DiskAccess> {
        let mut out = Vec::new();
        self.access_into(io, &mut out);
        out
    }

    /// [`FileCache::access`] into a caller-owned buffer: appends the
    /// resulting disk accesses to `out` instead of allocating a fresh
    /// vector per event. The streaming pipeline feeds millions of events
    /// through one reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if events go backwards in time.
    pub fn access_into(&mut self, io: &IoEvent, out: &mut Vec<DiskAccess>) {
        assert!(
            io.time >= self.last_event_time,
            "cache events must be time-ordered"
        );
        self.last_event_time = io.time;
        self.run_flush_ticks(io.time, out);
        match io.kind {
            IoKind::Close => {}
            IoKind::Open => {
                // Metadata read: inode/dentry page of the file.
                self.read_pages(io, 0, 0, out);
            }
            IoKind::Read => {
                let (first, last) = self.page_range(io);
                // §7 readahead: a known streaming PC pulls its predicted
                // remainder in with the demand fetch.
                let mut effective_last = last;
                if let Some(ra) = self.readahead.as_mut() {
                    let ahead = ra.observe(io.pc, io.file, first, last - first + 1);
                    self.stats.prefetched_pages += ahead;
                    effective_last = last + ahead;
                }
                self.read_pages(io, first, effective_last, out);
            }
            IoKind::Write | IoKind::SyncWrite => {
                let (first, last) = self.page_range(io);
                if io.kind == IoKind::SyncWrite {
                    for page in first..=last {
                        let key = (io.file, page);
                        if self.pages.get_mut(&key).is_none() {
                            self.insert_page(
                                key,
                                PageState {
                                    dirty: false,
                                    dirtied_by: io.pid,
                                    dirtied_at: io.time,
                                },
                                io.time,
                                out,
                            );
                        }
                    }
                    out.push(DiskAccess {
                        time: io.time,
                        pid: io.pid,
                        pc: io.pc,
                        fd: io.fd,
                        kind: IoKind::Write,
                        pages: (last - first + 1) as u32,
                    });
                } else if self.config.write_through {
                    self.stats.page_misses += last - first + 1;
                    out.push(DiskAccess {
                        time: io.time,
                        pid: io.pid,
                        pc: io.pc,
                        fd: io.fd,
                        kind: IoKind::Write,
                        pages: (last - first + 1) as u32,
                    });
                } else {
                    for page in first..=last {
                        let key = (io.file, page);
                        if let Some(state) = self.pages.get_mut(&key) {
                            if !state.dirty {
                                state.dirtied_at = io.time;
                            }
                            state.dirty = true;
                            state.dirtied_by = io.pid;
                            self.stats.page_hits += 1;
                        } else {
                            self.stats.page_misses += 1;
                            self.insert_page(
                                key,
                                PageState {
                                    dirty: true,
                                    dirtied_by: io.pid,
                                    dirtied_at: io.time,
                                },
                                io.time,
                                out,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Reads pages `first..=last` of `io.file`, coalescing contiguous
    /// misses into single accesses appended to `out`.
    fn read_pages(&mut self, io: &IoEvent, first: u64, last: u64, out: &mut Vec<DiskAccess>) {
        let mut run_len = 0u32;
        for page in first..=last {
            let key = (io.file, page);
            if self.pages.get_mut(&key).is_some() {
                self.stats.page_hits += 1;
                Self::emit_read_run(io, &mut run_len, out);
            } else {
                self.stats.page_misses += 1;
                self.insert_page(
                    key,
                    PageState {
                        dirty: false,
                        dirtied_by: io.pid,
                        dirtied_at: io.time,
                    },
                    io.time,
                    out,
                );
                run_len += 1;
            }
        }
        Self::emit_read_run(io, &mut run_len, out);
    }

    fn emit_read_run(io: &IoEvent, run_len: &mut u32, out: &mut Vec<DiskAccess>) {
        if *run_len > 0 {
            out.push(DiskAccess {
                time: io.time,
                pid: io.pid,
                pc: io.pc,
                fd: io.fd,
                kind: IoKind::Read,
                pages: *run_len,
            });
            *run_len = 0;
        }
    }
}

/// Filters a whole trace run through a cold cache, returning the disk
/// accesses and the final cache statistics.
///
/// Fork/exit events pass through untouched (they carry no I/O); each run
/// gets a fresh cache, mirroring the paper's independent per-application
/// traces.
pub fn filter_run(
    run: &pcap_trace::TraceRun,
    config: &CacheConfig,
) -> (Vec<DiskAccess>, CacheStats) {
    let mut cache = FileCache::new(config.clone());
    let mut accesses = Vec::new();
    let stats = filter_run_into(run, &mut cache, &mut accesses);
    (accesses, stats)
}

/// [`filter_run`] with caller-owned state: resets `cache` to cold,
/// appends the run's disk accesses to `accesses` (which the caller
/// should clear between runs), and returns the run's cache statistics.
///
/// This is the streaming-pipeline entry point — one cache and one
/// access buffer filter every run of every device with no per-run
/// allocation once their capacities have warmed up.
pub fn filter_run_into(
    run: &pcap_trace::TraceRun,
    cache: &mut FileCache,
    accesses: &mut Vec<DiskAccess>,
) -> CacheStats {
    cache.reset();
    for event in &run.events {
        if let TraceEvent::Io(io) = event {
            cache.access_into(io, accesses);
        }
    }
    *cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: IoKind, file: u64, offset: u64, len: u64) -> IoEvent {
        IoEvent {
            time: SimTime::from_millis(t),
            pid: Pid(1),
            pc: pcap_types::Pc(0x42),
            fd: Fd(3),
            kind,
            file: FileId(file),
            offset,
            len,
        }
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut c = FileCache::new(CacheConfig::paper());
        let a = c.access(&ev(0, IoKind::Read, 1, 0, 4096));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].pages, 1);
        assert_eq!(a[0].kind, IoKind::Read);
        let b = c.access(&ev(1, IoKind::Read, 1, 0, 4096));
        assert!(b.is_empty());
        assert_eq!(c.stats().page_hits, 1);
        assert_eq!(c.stats().page_misses, 1);
    }

    #[test]
    fn contiguous_misses_coalesce() {
        let mut c = FileCache::new(CacheConfig::paper());
        let a = c.access(&ev(0, IoKind::Read, 1, 0, 4 * 4096));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].pages, 4);
    }

    #[test]
    fn hit_in_middle_splits_runs() {
        let mut c = FileCache::new(CacheConfig::paper());
        // Warm page 1 only.
        c.access(&ev(0, IoKind::Read, 1, 4096, 4096));
        // Read pages 0..=2: page 1 hits, pages 0 and 2 miss separately.
        let a = c.access(&ev(1, IoKind::Read, 1, 0, 3 * 4096));
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|d| d.pages == 1));
    }

    #[test]
    fn writes_are_buffered_until_flush_tick() {
        let mut c = FileCache::new(CacheConfig::paper());
        let w = c.access(&ev(1_000, IoKind::Write, 1, 0, 4096));
        assert!(w.is_empty(), "write-back: no immediate disk access");
        assert_eq!(c.dirty_pages(), 1);
        // Not yet expired at the 30 s wakeup (age 29 s); written back by
        // the first wakeup at which the page is ≥ 30 s old (35 s).
        let early = c.access(&ev(31_000, IoKind::Close, 1, 0, 0));
        assert!(early.is_empty());
        let later = c.access(&ev(40_000, IoKind::Close, 1, 0, 0));
        assert_eq!(later.len(), 1);
        assert!(later[0].is_kernel());
        assert_eq!(later[0].kind, IoKind::Write);
        assert_eq!(later[0].time, SimTime::from_secs(35));
        assert_eq!(c.dirty_pages(), 0);
        assert_eq!(c.stats().flush_runs, 1);
    }

    #[test]
    fn flush_tick_without_dirty_data_is_silent() {
        let mut c = FileCache::new(CacheConfig::paper());
        c.access(&ev(0, IoKind::Read, 1, 0, 4096));
        let a = c.access(&ev(65_000, IoKind::Read, 1, 0, 4096));
        assert!(a.is_empty());
        assert_eq!(c.stats().flush_runs, 0);
    }

    #[test]
    fn write_through_hits_disk_immediately() {
        let mut cfg = CacheConfig::paper();
        cfg.write_through = true;
        let mut c = FileCache::new(cfg);
        let w = c.access(&ev(0, IoKind::Write, 1, 0, 8192));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].pages, 2);
        assert_eq!(w[0].pc, pcap_types::Pc(0x42), "attributed to the app");
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let mut c = FileCache::new(CacheConfig::paper()); // 64 pages
        for i in 0..65 {
            c.access(&ev(i, IoKind::Read, 1, i * 4096, 4096));
        }
        assert_eq!(c.resident_pages(), 64);
        assert_eq!(c.stats().evictions, 1);
        // Page 0 (least recent) was evicted: re-reading it misses.
        let a = c.access(&ev(100, IoKind::Read, 1, 0, 4096));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = FileCache::new(CacheConfig::paper());
        c.access(&ev(0, IoKind::Write, 1, 0, 4096));
        // 64 more reads evict the dirty page.
        let mut writebacks = 0;
        for i in 0..64 {
            let out = c.access(&ev(1 + i, IoKind::Read, 2, i * 4096, 4096));
            writebacks += out
                .iter()
                .filter(|d| d.kind == IoKind::Write && d.is_kernel())
                .count();
        }
        assert_eq!(writebacks, 1);
        assert_eq!(c.stats().eviction_writebacks, 1);
    }

    #[test]
    fn open_reads_metadata_once() {
        let mut c = FileCache::new(CacheConfig::paper());
        let a = c.access(&ev(0, IoKind::Open, 9, 0, 0));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].pages, 1);
        let b = c.access(&ev(1, IoKind::Open, 9, 0, 0));
        assert!(b.is_empty(), "metadata cached");
    }

    #[test]
    fn close_is_free() {
        let mut c = FileCache::new(CacheConfig::paper());
        assert!(c.access(&ev(0, IoKind::Close, 1, 0, 0)).is_empty());
        assert_eq!(c.stats().page_hits + c.stats().page_misses, 0);
    }

    #[test]
    fn multiple_missed_ticks_fire_in_order() {
        let mut c = FileCache::new(CacheConfig::paper());
        c.access(&ev(1_000, IoKind::Write, 1, 0, 4096));
        // The page dirtied at 1 s expires at the 35 s wakeup.
        let mid = c.access(&ev(40_000, IoKind::Write, 1, 4096, 4096));
        assert_eq!(mid.len(), 1);
        assert_eq!(mid[0].time, SimTime::from_secs(35));
        // The page dirtied at 40 s expires at the 70 s wakeup; later
        // wakeups find nothing dirty and stay silent.
        let out = c.access(&ev(95_000, IoKind::Close, 1, 0, 0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, SimTime::from_secs(70));
        assert_eq!(c.stats().flush_runs, 2);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn backwards_time_panics() {
        let mut c = FileCache::new(CacheConfig::paper());
        c.access(&ev(10, IoKind::Read, 1, 0, 4096));
        c.access(&ev(5, IoKind::Read, 1, 0, 4096));
    }

    #[test]
    fn readahead_coalesces_streaming_reads() {
        let plain_cfg = CacheConfig::paper();
        let mut ra_cfg = CacheConfig::paper();
        ra_cfg.readahead = Some(ReadaheadConfig::default());
        let mut plain = FileCache::new(plain_cfg.clone());
        let mut ra = FileCache::new(ra_cfg);
        let mut plain_accesses = 0usize;
        let mut ra_accesses = 0usize;
        // Two streaming runs from the same PC: the engine learns on the
        // first and prefetches on the second.
        for (file, base_t) in [(1u64, 0u64), (2, 10_000)] {
            for i in 0..12u64 {
                let e = ev(base_t + i * 10, IoKind::Read, file, i * 4096, 4096);
                plain_accesses += plain.access(&e).len();
                ra_accesses += ra.access(&e).len();
            }
        }
        assert!(
            ra_accesses < plain_accesses,
            "readahead must coalesce: {ra_accesses} vs {plain_accesses}"
        );
        assert!(ra.stats().prefetched_pages > 0);
        let _ = plain_cfg;
    }

    #[test]
    fn hit_rate() {
        let mut c = FileCache::new(CacheConfig::paper());
        c.access(&ev(0, IoKind::Read, 1, 0, 4096));
        c.access(&ev(1, IoKind::Read, 1, 0, 4096));
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
