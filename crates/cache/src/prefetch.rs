//! PC-based readahead — the "I/O prefetching" future-work direction of
//! the paper's §7 ("PCAP opens a new direction for … predictor-based
//! techniques suitable for many other aspects of the operating system,
//! such as file buffer management and I/O prefetching").
//!
//! The same observation that powers PCAP — a program counter identifies
//! *which* application behaviour is running — applies to access
//! patterns: a call site that streamed 40 sequential pages last time
//! will stream again. [`PcReadahead`] learns, per I/O-triggering PC, the
//! typical length of the sequential run that call site produces, and
//! when a new run starts at a known PC it pulls the predicted remainder
//! in with the first access. Fewer, larger disk accesses mean less
//! per-access overhead *and* longer undisturbed idle gaps — both help
//! the shutdown predictor. (The authors later developed this idea into
//! PC-based pattern classification for buffer caching.)

use pcap_types::{FileId, Pc};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the PC-based readahead engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadaheadConfig {
    /// Cap on pages prefetched per access (keep well below the cache
    /// capacity — 64 pages in the paper configuration — or readahead
    /// evicts what it just fetched).
    pub max_pages: u32,
    /// Minimum learned run length (pages) before a PC earns readahead.
    pub min_run: u32,
    /// EMA weight of the most recent run when updating a PC's learned
    /// length.
    pub alpha: f64,
}

impl Default for ReadaheadConfig {
    fn default() -> Self {
        ReadaheadConfig {
            max_pages: 16,
            min_run: 4,
            alpha: 0.5,
        }
    }
}

/// An in-flight sequential run at one call site.
#[derive(Debug, Clone, Copy)]
struct ActiveRun {
    file: FileId,
    next_page: u64,
    run_pages: u64,
}

/// Per-PC sequential-run learner and readahead predictor.
#[derive(Debug, Clone, Default)]
pub struct PcReadahead {
    config: ReadaheadConfig,
    /// Learned run length per PC (EMA over completed runs, in pages).
    learned: HashMap<Pc, f64>,
    /// The run currently being observed per PC.
    active: HashMap<Pc, ActiveRun>,
    /// Pages fetched ahead of demand.
    prefetched: u64,
    /// Prefetch decisions taken.
    activations: u64,
}

impl PcReadahead {
    /// Creates a readahead engine.
    pub fn new(config: ReadaheadConfig) -> PcReadahead {
        PcReadahead {
            config,
            ..PcReadahead::default()
        }
    }

    /// (pages prefetched, activations) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.prefetched, self.activations)
    }

    /// Forgets all learned runs and statistics, keeping the table
    /// capacity. A cleared engine behaves exactly like a new one.
    pub fn clear(&mut self) {
        self.learned.clear();
        self.active.clear();
        self.prefetched = 0;
        self.activations = 0;
    }

    /// Observes a read of `pages` pages starting at `first_page` of
    /// `file`, triggered from `pc`. Returns how many pages *beyond* the
    /// demand range to fetch ahead (0 when the PC has no earned
    /// prediction or the run is already under way).
    pub fn observe(&mut self, pc: Pc, file: FileId, first_page: u64, pages: u64) -> u64 {
        let continuing = match self.active.get(&pc) {
            Some(run) => run.file == file && run.next_page == first_page,
            None => false,
        };
        if continuing {
            let run = self.active.get_mut(&pc).expect("checked above");
            run.next_page = first_page + pages;
            run.run_pages += pages;
            return 0; // mid-run: the run-start prefetch already covered us
        }
        // A new run starts: close out the previous one (learn) and
        // predict from what this PC did historically.
        if let Some(finished) = self.active.remove(&pc) {
            let entry = self.learned.entry(pc).or_insert(finished.run_pages as f64);
            *entry =
                self.config.alpha * finished.run_pages as f64 + (1.0 - self.config.alpha) * *entry;
        }
        self.active.insert(
            pc,
            ActiveRun {
                file,
                next_page: first_page + pages,
                run_pages: pages,
            },
        );
        let predicted = self.learned.get(&pc).copied().unwrap_or(0.0);
        if predicted >= f64::from(self.config.min_run) {
            let ahead = (predicted as u64)
                .saturating_sub(pages)
                .min(u64::from(self.config.max_pages));
            if ahead > 0 {
                self.prefetched += ahead;
                self.activations += 1;
            }
            ahead
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PcReadahead {
        PcReadahead::new(ReadaheadConfig::default())
    }

    #[test]
    fn no_prediction_before_learning() {
        let mut r = engine();
        assert_eq!(r.observe(Pc(1), FileId(1), 0, 2), 0);
        assert_eq!(r.observe(Pc(1), FileId(1), 2, 2), 0);
        assert_eq!(r.stats(), (0, 0));
    }

    #[test]
    fn learns_run_length_and_prefetches_next_run() {
        let mut r = engine();
        // First run: 10 sequential 2-page reads at PC 1 (20 pages).
        for i in 0..10 {
            r.observe(Pc(1), FileId(1), i * 2, 2);
        }
        // New file ⇒ new run: the learned 20-page length predicts,
        // capped at max_pages.
        let ahead = r.observe(Pc(1), FileId(2), 0, 2);
        assert_eq!(ahead, 16, "20 learned − 2 demanded, capped at 16");
        let (prefetched, activations) = r.stats();
        assert_eq!((prefetched, activations), (16, 1));
        // Mid-run accesses don't re-prefetch.
        assert_eq!(r.observe(Pc(1), FileId(2), 2, 2), 0);
    }

    #[test]
    fn short_runs_never_earn_readahead() {
        let mut r = engine();
        for file in 1..6u64 {
            // Runs of 2 pages — below min_run.
            r.observe(Pc(7), FileId(file), 0, 2);
        }
        assert_eq!(r.observe(Pc(7), FileId(9), 0, 2), 0);
    }

    #[test]
    fn distinct_pcs_learn_independently() {
        let mut r = engine();
        for i in 0..10 {
            r.observe(Pc(1), FileId(1), i * 2, 2);
        }
        // PC 2 never streamed: no prediction even on the same file.
        assert_eq!(r.observe(Pc(2), FileId(1), 100, 2), 0);
    }

    #[test]
    fn ema_tracks_shrinking_runs() {
        let mut r = PcReadahead::new(ReadaheadConfig {
            max_pages: 64,
            min_run: 4,
            alpha: 1.0, // remember only the last run
        });
        for i in 0..10 {
            r.observe(Pc(1), FileId(1), i, 1);
        }
        // Second run is short (2 pages): with alpha 1.0 the next
        // prediction is 10, then after the short run completes, 2.
        r.observe(Pc(1), FileId(2), 0, 1);
        r.observe(Pc(1), FileId(2), 1, 1);
        let ahead = r.observe(Pc(1), FileId(3), 0, 1);
        assert!(ahead <= 1, "learned length collapsed to 2: ahead {ahead}");
    }
}
