//! One Criterion benchmark per table and figure of the paper: each
//! bench regenerates its experiment from the already-generated trace
//! suite (and prints the regenerated rows once, so `cargo bench` output
//! doubles as a results log).

use criterion::{criterion_group, criterion_main, Criterion};
use pcap_bench::{full_workbench, reduced_workbench};
use pcap_report::{Experiment, Workbench};
use std::hint::black_box;
use std::sync::OnceLock;

fn full() -> &'static Workbench {
    static BENCH: OnceLock<Workbench> = OnceLock::new();
    BENCH.get_or_init(full_workbench)
}

fn reduced() -> &'static Workbench {
    static BENCH: OnceLock<Workbench> = OnceLock::new();
    BENCH.get_or_init(reduced_workbench)
}

/// Registers one bench that regenerates `experiment`. The full suite's
/// rows are printed once (the actual results); timing runs on the
/// reduced suite so a `cargo bench` sweep stays tractable.
fn bench_experiment(c: &mut Criterion, experiment: Experiment) {
    for table in experiment.run(full()) {
        println!("{table}");
    }
    let reduced = reduced();
    c.bench_function(format!("regenerate/{experiment}"), |b| {
        b.iter(|| {
            // Workbench memoization would hide the work; re-run the
            // experiment against a fresh view each iteration.
            let fresh = Workbench::from_traces(reduced.traces().to_vec(), reduced.config().clone());
            black_box(experiment.run(&fresh))
        })
    });
}

fn table1(c: &mut Criterion) {
    bench_experiment(c, Experiment::Table1);
}
fn table2(c: &mut Criterion) {
    bench_experiment(c, Experiment::Table2);
}
fn fig6(c: &mut Criterion) {
    bench_experiment(c, Experiment::Fig6);
}
fn fig7(c: &mut Criterion) {
    bench_experiment(c, Experiment::Fig7);
}
fn fig8(c: &mut Criterion) {
    bench_experiment(c, Experiment::Fig8);
}
fn fig9(c: &mut Criterion) {
    bench_experiment(c, Experiment::Fig9);
}
fn fig10(c: &mut Criterion) {
    bench_experiment(c, Experiment::Fig10);
}
fn table3(c: &mut Criterion) {
    bench_experiment(c, Experiment::Table3);
}
fn ablations(c: &mut Criterion) {
    bench_experiment(c, Experiment::Ablations);
}
fn system(c: &mut Criterion) {
    bench_experiment(c, Experiment::System);
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = table1, table2, fig6, fig7, fig8, fig9, fig10, table3, ablations, system
}
criterion_main!(experiments);
