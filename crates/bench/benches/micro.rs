//! Micro-benchmarks for the paper's constant-factor claims: signature
//! maintenance and table lookup (§3.2.2's "insignificant" per-I/O
//! overhead), PC capture strategies (§3.2.1), cache filtering, and raw
//! simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pcap_bench::sample_trace;
use pcap_cache::{CacheConfig, FileCache};
use pcap_capture::{CallStack, CaptureStrategy, FrameKind};
use pcap_core::{
    IdlePredictor, Pcap, PcapConfig, PredictionTable, SharedTable, SignatureTracker, TableKey,
};
use pcap_sim::{
    audit_prepared, evaluate_app, evaluate_prepared, evaluate_prepared_observed, MetricsObserver,
    PowerManagerKind, PreparedTrace, SimConfig,
};
use pcap_types::{
    DiskAccess, Fd, FileId, IoEvent, IoKind, Pc, Pid, Signature, SimDuration, SimTime,
};
use std::hint::black_box;

/// §3.2.2: obtaining the PC and folding it into the signature.
fn signature_update(c: &mut Criterion) {
    c.bench_function("micro/signature_update", |b| {
        let mut tracker = SignatureTracker::new();
        let mut pc = 0u32;
        b.iter(|| {
            pc = pc.wrapping_add(0x9e37_79b9);
            black_box(tracker.observe(Pc(pc)))
        })
    });
}

/// §3.2.2: "the predictor lookup consists of a hash table access and
/// the comparison of signatures".
fn table_lookup(c: &mut Criterion) {
    let mut table = PredictionTable::unbounded();
    for i in 0..139 {
        // The largest table the paper reports (mozilla PCAPfh).
        table.learn(TableKey::plain(Signature(i * 0x0101)));
    }
    c.bench_function("micro/table_lookup_hit", |b| {
        b.iter(|| black_box(table.lookup(TableKey::plain(Signature(0x0101)))))
    });
    c.bench_function("micro/table_lookup_miss", |b| {
        b.iter(|| black_box(table.lookup(TableKey::plain(Signature(0xdead_beef)))))
    });
}

/// Full per-I/O predictor work: signature + lookup + vote.
fn pcap_on_access(c: &mut Criterion) {
    c.bench_function("micro/pcap_on_access", |b| {
        let mut pcap = Pcap::new(PcapConfig::paper(), SharedTable::unbounded());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let access = DiskAccess {
                time: SimTime::from_millis(t),
                pid: Pid(1),
                pc: Pc(0x1000 + (t % 7) as u32),
                fd: Fd(3),
                kind: IoKind::Read,
                pages: 1,
            };
            black_box(pcap.on_access(&access, SimDuration::ZERO))
        })
    });
}

/// §3.2.1: the three capture strategies on a realistic stack.
fn capture_strategies(c: &mut Criterion) {
    let mut stack = CallStack::new();
    stack.push(Pc(0x1000), FrameKind::Application);
    stack.push(Pc(0x1100), FrameKind::Application);
    for i in 0..3 {
        stack.push(Pc(0x7f00_0000 + i), FrameKind::Library);
    }
    stack.push(Pc(0xc000_0000), FrameKind::Kernel);
    for strategy in [
        CaptureStrategy::LibraryHook,
        CaptureStrategy::SyscallInterception,
        CaptureStrategy::KernelHook,
    ] {
        c.bench_function(format!("micro/capture/{strategy}"), |b| {
            b.iter(|| black_box(strategy.capture(&stack).expect("app frame")))
        });
    }
}

/// File-cache filtering throughput (events per second).
fn cache_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/cache");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("filter_10k_events", |b| {
        b.iter(|| {
            let mut cache = FileCache::new(CacheConfig::paper());
            for i in 0..10_000u64 {
                let event = IoEvent {
                    time: SimTime::from_millis(i * 3),
                    pid: Pid(1),
                    pc: Pc(0x1000),
                    kind: if i % 5 == 0 {
                        IoKind::Write
                    } else {
                        IoKind::Read
                    },
                    fd: Fd(3),
                    file: FileId(i % 16),
                    offset: (i % 64) * 4096,
                    len: 4096,
                };
                black_box(cache.access(&event));
            }
        })
    });
    group.finish();
}

/// Whole-pipeline throughput: one application trace through the global
/// simulator (Table 1 "mozilla"-shaped input).
fn simulator_throughput(c: &mut Criterion) {
    let trace = sample_trace();
    let events = trace.total_ios() as u64;
    let config = SimConfig::paper();
    let mut group = c.benchmark_group("micro/simulator");
    group.throughput(Throughput::Elements(events));
    group.sample_size(10);
    for kind in [
        PowerManagerKind::Timeout,
        PowerManagerKind::LT,
        PowerManagerKind::PCAP,
    ] {
        group.bench_function(format!("evaluate/{kind}"), |b| {
            b.iter(|| black_box(evaluate_app(&trace, &config, kind)))
        });
    }
    group.finish();
}

/// The two phases of the prepare-once pipeline, measured separately:
/// `prepare` is the manager-independent work (cache filtering, gap
/// extraction) paid once per trace, `evaluate_prepared` is the
/// per-manager increment paid for every grid cell. Their ratio is the
/// headroom the shared-streams warm-up exploits.
fn prepare_vs_evaluate(c: &mut Criterion) {
    let trace = sample_trace();
    let events = trace.total_ios() as u64;
    let config = SimConfig::paper();
    let mut group = c.benchmark_group("micro/prepared");
    group.throughput(Throughput::Elements(events));
    group.sample_size(10);
    group.bench_function("prepare", |b| {
        b.iter(|| black_box(PreparedTrace::build(&trace, &config)))
    });
    let prepared = PreparedTrace::build(&trace, &config);
    for kind in [
        PowerManagerKind::Timeout,
        PowerManagerKind::LT,
        PowerManagerKind::PCAP,
    ] {
        group.bench_function(format!("evaluate_prepared/{kind}"), |b| {
            b.iter(|| black_box(evaluate_prepared(&prepared, &config, kind)))
        });
    }
    group.finish();
}

/// Observer overhead (DESIGN.md §8): the same PCAP evaluation with the
/// statically-disabled [`NullObserver`], the cheapest attached sink
/// (metrics only), and the full collecting sink. The first two should
/// be indistinguishable — record construction is compiled out when
/// `O::ENABLED` is false; `pcap bench` enforces the <2% bound, this
/// group quantifies it.
fn observer_overhead(c: &mut Criterion) {
    let trace = sample_trace();
    let events = trace.total_ios() as u64;
    let config = SimConfig::paper();
    let prepared = PreparedTrace::build(&trace, &config);
    let mut group = c.benchmark_group("micro/observer");
    group.throughput(Throughput::Elements(events));
    group.sample_size(10);
    group.bench_function("null", |b| {
        b.iter(|| {
            black_box(evaluate_prepared(
                &prepared,
                &config,
                PowerManagerKind::PCAP,
            ))
        })
    });
    group.bench_function("metrics", |b| {
        b.iter(|| {
            let mut sink = MetricsObserver::default();
            let report =
                evaluate_prepared_observed(&prepared, &config, PowerManagerKind::PCAP, &mut sink);
            black_box((report, sink.metrics))
        })
    });
    group.bench_function("collect", |b| {
        b.iter(|| black_box(audit_prepared(&prepared, &config, PowerManagerKind::PCAP)))
    });
    group.finish();
}

/// DESIGN.md §10's zero-overhead claim for pipeline tracing: the
/// evaluation core with the compiled-out [`NullPipeline`] vs a live
/// [`TraceRecorder`] (one span + one histogram observation + one
/// counter update per evaluation), plus the raw per-span cost of the
/// recorder itself.
fn tracing_overhead(c: &mut Criterion) {
    use pcap_sim::evaluate_prepared_traced;
    let trace = sample_trace();
    let events = trace.total_ios() as u64;
    let config = SimConfig::paper();
    let prepared = PreparedTrace::build(&trace, &config);
    let mut group = c.benchmark_group("micro/tracing");
    group.throughput(Throughput::Elements(events));
    group.sample_size(10);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            black_box(evaluate_prepared_traced(
                &prepared,
                &config,
                PowerManagerKind::PCAP,
                &pcap_obs::NullPipeline,
            ))
        })
    });
    group.bench_function("recording", |b| {
        let recorder = pcap_obs::TraceRecorder::new();
        b.iter(|| {
            black_box(evaluate_prepared_traced(
                &prepared,
                &config,
                PowerManagerKind::PCAP,
                &recorder,
            ))
        })
    });
    group.finish();

    let recorder = pcap_obs::TraceRecorder::new();
    c.bench_function("micro/tracing/span", |b| {
        b.iter(|| {
            drop(black_box(pcap_obs::span(&recorder, "probe")));
        })
    });
}

/// Per-gap cost of the three ladder descent policies on the mobile-ATA
/// ladder: plan + charge for a sweep of gap lengths spanning all three
/// envelope regimes. The predictive arm includes the vote → target
/// mapping; ski-rental reuses its precomputed switch times.
fn ladder(c: &mut Criterion) {
    use pcap_disk::{
        descent_energy, GapContext, LadderPolicy, MultiStateParams, OracleLadder, PredictiveJump,
        SkiRental,
    };
    let ladder = MultiStateParams::mobile_ata();
    let breakevens = ladder.breakevens();
    let ski = SkiRental::new(&ladder);
    let gaps: Vec<SimDuration> = (1..=64)
        .map(|i| SimDuration::from_millis(i * 500))
        .collect();
    let mut group = c.benchmark_group("micro/ladder");
    group.throughput(Throughput::Elements(gaps.len() as u64));
    let charge = |policy: &dyn LadderPolicy, plan: &mut Vec<_>, shutdown_at| {
        let mut total = 0.0f64;
        for &gap in &gaps {
            let ctx = GapContext {
                shutdown_at,
                target: breakevens.len() - 1,
                gap,
            };
            policy.plan(&ladder, &ctx, plan);
            total += descent_energy(&ladder, plan, gap).0.total().0;
        }
        total
    };
    group.bench_function("predictive", |b| {
        let mut plan = Vec::new();
        b.iter(|| {
            black_box(charge(
                &PredictiveJump,
                &mut plan,
                Some(SimDuration::from_secs(1)),
            ))
        })
    });
    group.bench_function("ski-rental", |b| {
        let mut plan = Vec::new();
        b.iter(|| black_box(charge(&ski, &mut plan, None)))
    });
    group.bench_function("oracle", |b| {
        let mut plan = Vec::new();
        b.iter(|| black_box(charge(&OracleLadder, &mut plan, None)))
    });
    group.finish();
}

criterion_group!(
    micro,
    signature_update,
    table_lookup,
    pcap_on_access,
    capture_strategies,
    cache_throughput,
    simulator_throughput,
    prepare_vs_evaluate,
    observer_overhead,
    tracing_overhead,
    ladder
);
criterion_main!(micro);
