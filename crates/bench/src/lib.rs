//! Shared helpers for the Criterion benchmarks that regenerate the
//! paper's tables and figures.
//!
//! The benches measure how long each experiment takes to regenerate
//! (and, once per run, print the regenerated rows); the CLI (`pcap run
//! <experiment>`) is the canonical way to read the results themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pcap_report::Workbench;
use pcap_sim::SimConfig;
use pcap_trace::ApplicationTrace;
use pcap_workload::{AppModel, PaperApp};

/// Deterministic seed shared by every benchmark.
pub const BENCH_SEED: u64 = 42;

/// The full paper suite (all executions) — used by the per-figure
/// regeneration benches.
///
/// # Panics
///
/// Panics if a workload spec fails validation (a bug).
pub fn full_workbench() -> Workbench {
    Workbench::generate(BENCH_SEED, SimConfig::paper()).expect("valid workload specs")
}

/// A reduced suite (a handful of executions per application) for
/// micro-iteration benches where full regeneration would dominate.
///
/// # Panics
///
/// Panics if a workload spec fails validation (a bug).
pub fn reduced_workbench() -> Workbench {
    let traces: Vec<ApplicationTrace> = PaperApp::ALL
        .iter()
        .map(|app| {
            let mut trace = app.spec().generate_trace(BENCH_SEED).expect("valid");
            trace.runs.truncate(6);
            trace
        })
        .collect();
    Workbench::from_traces(traces, SimConfig::paper())
}

/// One moderately sized trace for cache/simulator throughput benches.
///
/// # Panics
///
/// Panics if the workload spec fails validation (a bug).
pub fn sample_trace() -> ApplicationTrace {
    let mut trace = PaperApp::Mozilla
        .spec()
        .generate_trace(BENCH_SEED)
        .expect("valid");
    trace.runs.truncate(8);
    trace
}
