//! Deterministic assignment of program counters to named code sites.
//!
//! PCAP's cross-execution table reuse (§4.2) rests on PCs being stable
//! across executions of the same binary. [`SiteMap`] gives the workload
//! generator that property: each named call site of an application maps
//! to a fixed PC in a synthetic text segment, identically in every run,
//! unless the application is deliberately "recompiled"
//! ([`SiteMap::recompiled`]) to study retraining.

use pcap_types::Pc;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Base of the synthetic application text segment.
const APP_TEXT_BASE: u32 = 0x0804_8000;
/// Size of the synthetic application text segment.
const APP_TEXT_SIZE: u32 = 0x0080_0000;

/// Maps stable site names (e.g. `"mozilla::load_page::read_css"`) to
/// deterministic application PCs.
///
/// ```
/// use pcap_capture::SiteMap;
///
/// let mut a = SiteMap::new("mozilla");
/// let mut b = SiteMap::new("mozilla");
/// // Same binary ⇒ same PCs in any run, regardless of lookup order.
/// let x = a.pc("load_page");
/// let _ = b.pc("save_bookmarks");
/// assert_eq!(x, b.pc("load_page"));
/// // A recompiled binary lays code out differently.
/// let mut c = SiteMap::new("mozilla").recompiled(1);
/// assert_ne!(x, c.pc("load_page"));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteMap {
    binary: String,
    build_id: u32,
    assigned: HashMap<String, Pc>,
    used: HashMap<u32, String>,
}

impl SiteMap {
    /// Creates the site map of `binary` at build 0.
    pub fn new(binary: &str) -> SiteMap {
        SiteMap {
            binary: binary.to_owned(),
            build_id: 0,
            assigned: HashMap::new(),
            used: HashMap::new(),
        }
    }

    /// Returns the map of the same binary after `build_id` recompilations:
    /// every site lands at a different address (§4.2: "PC addresses may
    /// change due to recompilation", forcing PCAP to retrain).
    #[must_use]
    pub fn recompiled(mut self, build_id: u32) -> SiteMap {
        assert!(
            self.assigned.is_empty(),
            "recompile before assigning any sites"
        );
        self.build_id = build_id;
        self
    }

    /// The binary name this map belongs to.
    pub fn binary(&self) -> &str {
        &self.binary
    }

    /// Returns the PC of the named call site, assigning one
    /// deterministically on first use.
    ///
    /// The address is a pure function of `(binary, build_id, site)`;
    /// collisions between distinct sites are resolved by deterministic
    /// linear probing, so distinct sites always get distinct PCs.
    pub fn pc(&mut self, site: &str) -> Pc {
        if let Some(&pc) = self.assigned.get(site) {
            return pc;
        }
        let mut offset = fnv1a(&[
            self.binary.as_bytes(),
            &self.build_id.to_le_bytes(),
            site.as_bytes(),
        ]) % APP_TEXT_SIZE;
        // Instructions are 4-byte aligned in the synthetic segment;
        // probe by one instruction on collision.
        offset &= !3;
        loop {
            let candidate = APP_TEXT_BASE + offset;
            match self.used.get(&candidate) {
                None => {
                    let pc = Pc(candidate);
                    self.used.insert(candidate, site.to_owned());
                    self.assigned.insert(site.to_owned(), pc);
                    return pc;
                }
                Some(owner) if owner == site => return Pc(candidate),
                Some(_) => offset = (offset + 4) % APP_TEXT_SIZE,
            }
        }
    }

    /// Number of distinct sites assigned so far.
    pub fn len(&self) -> usize {
        self.assigned.len()
    }

    /// True if no sites were assigned yet.
    pub fn is_empty(&self) -> bool {
        self.assigned.is_empty()
    }
}

/// FNV-1a over a list of byte chunks.
fn fnv1a(chunks: &[&[u8]]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for chunk in chunks {
        for &b in *chunk {
            hash ^= u32::from(b);
            hash = hash.wrapping_mul(0x0100_0193);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SiteMap::new("xemacs");
        let mut b = SiteMap::new("xemacs");
        for site in ["open", "save", "autosave", "load_elisp"] {
            assert_eq!(a.pc(site), b.pc(site));
        }
    }

    #[test]
    fn stable_under_lookup_order() {
        let mut a = SiteMap::new("writer");
        let mut b = SiteMap::new("writer");
        let a1 = a.pc("one");
        let _ = a.pc("two");
        let _ = b.pc("two");
        let b1 = b.pc("one");
        // Hash-based assignment is order-independent barring probe
        // collisions between exactly these two sites, which the
        // distinct-hash check below rules out for this input.
        assert_eq!(a1, b1);
    }

    #[test]
    fn distinct_sites_get_distinct_pcs() {
        let mut m = SiteMap::new("impress");
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let pc = m.pc(&format!("site{i}"));
            assert!(seen.insert(pc), "collision at site{i}");
        }
        assert_eq!(m.len(), 500);
    }

    #[test]
    fn different_binaries_differ() {
        let mut a = SiteMap::new("mozilla");
        let mut b = SiteMap::new("nedit");
        assert_ne!(a.pc("open"), b.pc("open"));
    }

    #[test]
    fn recompilation_moves_sites() {
        let mut v0 = SiteMap::new("mplayer");
        let mut v1 = SiteMap::new("mplayer").recompiled(1);
        assert_ne!(v0.pc("fill_buffer"), v1.pc("fill_buffer"));
    }

    #[test]
    fn pcs_live_in_app_text_segment() {
        let mut m = SiteMap::new("app");
        for i in 0..100 {
            let pc = m.pc(&format!("s{i}")).0;
            assert!((APP_TEXT_BASE..APP_TEXT_BASE + APP_TEXT_SIZE).contains(&pc));
            assert_eq!(pc % 4, 0, "instruction alignment");
            assert_ne!(pc, 0, "PC 0 is the kernel sentinel");
        }
    }
}
