//! Simulated call stacks and program-counter capture strategies.
//!
//! The paper (§3.2.1) discusses three ways of obtaining the application
//! PC that triggered an I/O operation — **library modification**,
//! **system-call interception**, and **kernel modification** — and
//! argues for library modification because the PC can be read directly
//! from the calling program's stack without walking library frames,
//! costing only about four memory accesses per I/O (§3.2.2).
//!
//! Real kernel/libc hooks are not portable into a simulation, so this
//! crate provides the closest synthetic equivalent: a [`CallStack`] of
//! typed frames and [`CaptureStrategy`] implementations that walk it
//! exactly the way the real hooks would, with per-capture
//! [cost accounting](CaptureCost). The workload generator drives
//! [`InstrumentedProcess`] values through application/library/kernel
//! frames so every captured PC in a trace went through this machinery.
//!
//! # Example
//!
//! ```
//! use pcap_capture::{CallStack, CaptureStrategy, FrameKind};
//! use pcap_types::Pc;
//!
//! let mut stack = CallStack::new();
//! stack.push(Pc(0x1000), FrameKind::Application); // main()
//! stack.push(Pc(0x1abc), FrameKind::Application); // save_file()
//! stack.push(Pc(0x7f01), FrameKind::Library);     // fwrite()
//! stack.push(Pc(0x7f99), FrameKind::Library);     // write() wrapper
//!
//! // All strategies agree on *which* PC triggered the I/O...
//! let lib = CaptureStrategy::LibraryHook.capture(&stack).unwrap();
//! let sys = CaptureStrategy::SyscallInterception.capture(&stack).unwrap();
//! assert_eq!(lib.pc, Pc(0x1abc));
//! assert_eq!(sys.pc, Pc(0x1abc));
//! // ...but the library hook is cheaper (no frame traversal).
//! assert!(lib.cost.memory_accesses < sys.cost.memory_accesses);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sites;
mod stack;

pub use sites::SiteMap;
pub use stack::{CallStack, Frame, FrameKind, InstrumentedProcess};

use pcap_types::Pc;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the power manager obtains the I/O-triggering PC (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaptureStrategy {
    /// The I/O library is modified to read the caller's return address
    /// directly off the stack at the application→library boundary.
    /// Cheapest: no frame traversal.
    LibraryHook,
    /// System calls are intercepted at the user-kernel boundary; the
    /// capture walks back through the library frames that the I/O call
    /// traversed to reach the application frame.
    SyscallInterception,
    /// The kernel itself is modified; like interception but the walk
    /// additionally starts below any kernel frames.
    KernelHook,
}

impl fmt::Display for CaptureStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CaptureStrategy::LibraryHook => "library-hook",
            CaptureStrategy::SyscallInterception => "syscall-interception",
            CaptureStrategy::KernelHook => "kernel-hook",
        };
        f.write_str(s)
    }
}

/// Cost model of one PC capture, in memory accesses.
///
/// The paper estimates that the library hook needs "about four memory
/// accesses" to obtain the PC and fold it into the signature; every
/// additional stack frame traversed costs two more (load frame pointer,
/// load return address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CaptureCost {
    /// Total simulated memory accesses.
    pub memory_accesses: u32,
    /// Frames walked to find the application frame.
    pub frames_walked: u32,
}

/// Base cost of reading the caller PC and updating the signature.
const BASE_MEMORY_ACCESSES: u32 = 4;
/// Cost of traversing one stack frame (frame pointer + return address).
const PER_FRAME_ACCESSES: u32 = 2;

/// A successfully captured PC with its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Captured {
    /// The application PC charged with the I/O.
    pub pc: Pc,
    /// What obtaining it cost.
    pub cost: CaptureCost,
}

/// Error returned when no application frame exists on the stack (e.g. a
/// kernel daemon performing I/O on its own behalf).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoApplicationFrame;

impl fmt::Display for NoApplicationFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("call stack contains no application frame to attribute the I/O to")
    }
}

impl std::error::Error for NoApplicationFrame {}

impl CaptureStrategy {
    /// Captures the application PC responsible for the I/O currently at
    /// the top of `stack`.
    ///
    /// All strategies attribute the I/O to the **innermost application
    /// frame** — the point where the application last called into
    /// library code — and differ only in where the walk starts and what
    /// it costs.
    ///
    /// # Errors
    ///
    /// Returns [`NoApplicationFrame`] if the stack holds no application
    /// frame.
    pub fn capture(self, stack: &CallStack) -> Result<Captured, NoApplicationFrame> {
        let frames = stack.frames();
        // Index of the innermost application frame.
        let app_idx = frames
            .iter()
            .rposition(|f| f.kind == FrameKind::Application)
            .ok_or(NoApplicationFrame)?;

        let walk_start = match self {
            // The library hook fires at the first app→library
            // transition: it sees the application frame directly.
            CaptureStrategy::LibraryHook => app_idx + 1,
            // Interception fires at the user-kernel boundary: walk every
            // library frame above the application frame.
            CaptureStrategy::SyscallInterception => frames
                .iter()
                .rposition(|f| f.kind == FrameKind::Library)
                .map_or(app_idx + 1, |i| i + 1),
            // The kernel hook walks kernel frames too.
            CaptureStrategy::KernelHook => frames.len(),
        };
        let frames_walked = (walk_start - app_idx - 1) as u32;
        Ok(Captured {
            pc: frames[app_idx].pc,
            cost: CaptureCost {
                memory_accesses: BASE_MEMORY_ACCESSES + PER_FRAME_ACCESSES * frames_walked,
                frames_walked,
            },
        })
    }
}

/// Accumulates capture costs across a run, for the capture-overhead
/// ablation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OverheadMeter {
    /// Number of captures performed.
    pub captures: u64,
    /// Total memory accesses spent capturing.
    pub memory_accesses: u64,
    /// Total frames walked.
    pub frames_walked: u64,
}

impl OverheadMeter {
    /// Creates an empty meter.
    pub fn new() -> OverheadMeter {
        OverheadMeter::default()
    }

    /// Records one capture.
    pub fn record(&mut self, cost: CaptureCost) {
        self.captures += 1;
        self.memory_accesses += u64::from(cost.memory_accesses);
        self.frames_walked += u64::from(cost.frames_walked);
    }

    /// Mean memory accesses per capture (0.0 when empty).
    pub fn mean_accesses(&self) -> f64 {
        if self.captures == 0 {
            0.0
        } else {
            self.memory_accesses as f64 / self.captures as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack_with_depths(lib: usize, kernel: usize) -> CallStack {
        let mut s = CallStack::new();
        s.push(Pc(0x100), FrameKind::Application);
        s.push(Pc(0x200), FrameKind::Application);
        for i in 0..lib {
            s.push(Pc(0x7000 + i as u32), FrameKind::Library);
        }
        for i in 0..kernel {
            s.push(Pc(0xc000 + i as u32), FrameKind::Kernel);
        }
        s
    }

    #[test]
    fn all_strategies_find_same_pc() {
        let s = stack_with_depths(3, 2);
        for strat in [
            CaptureStrategy::LibraryHook,
            CaptureStrategy::SyscallInterception,
            CaptureStrategy::KernelHook,
        ] {
            assert_eq!(strat.capture(&s).unwrap().pc, Pc(0x200), "{strat}");
        }
    }

    #[test]
    fn library_hook_costs_four_accesses() {
        let s = stack_with_depths(3, 0);
        let c = CaptureStrategy::LibraryHook.capture(&s).unwrap();
        assert_eq!(c.cost.memory_accesses, 4);
        assert_eq!(c.cost.frames_walked, 0);
    }

    #[test]
    fn interception_walks_library_frames() {
        let s = stack_with_depths(3, 0);
        let c = CaptureStrategy::SyscallInterception.capture(&s).unwrap();
        assert_eq!(c.cost.frames_walked, 3);
        assert_eq!(c.cost.memory_accesses, 4 + 2 * 3);
    }

    #[test]
    fn kernel_hook_walks_kernel_frames_too() {
        let s = stack_with_depths(3, 2);
        let c = CaptureStrategy::KernelHook.capture(&s).unwrap();
        assert_eq!(c.cost.frames_walked, 5);
    }

    #[test]
    fn cost_ordering_matches_paper() {
        let s = stack_with_depths(4, 2);
        let lib = CaptureStrategy::LibraryHook.capture(&s).unwrap().cost;
        let sys = CaptureStrategy::SyscallInterception
            .capture(&s)
            .unwrap()
            .cost;
        let ker = CaptureStrategy::KernelHook.capture(&s).unwrap().cost;
        assert!(lib.memory_accesses < sys.memory_accesses);
        assert!(sys.memory_accesses <= ker.memory_accesses);
    }

    #[test]
    fn kernel_only_stack_has_no_attribution() {
        let mut s = CallStack::new();
        s.push(Pc(0xc000), FrameKind::Kernel);
        assert_eq!(
            CaptureStrategy::LibraryHook.capture(&s),
            Err(NoApplicationFrame)
        );
    }

    #[test]
    fn overhead_meter_averages() {
        let mut m = OverheadMeter::new();
        m.record(CaptureCost {
            memory_accesses: 4,
            frames_walked: 0,
        });
        m.record(CaptureCost {
            memory_accesses: 8,
            frames_walked: 2,
        });
        assert_eq!(m.captures, 2);
        assert!((m.mean_accesses() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_mean_is_zero() {
        assert_eq!(OverheadMeter::new().mean_accesses(), 0.0);
    }
}
