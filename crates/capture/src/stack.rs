//! Simulated call stacks and instrumented processes.

use crate::{CaptureStrategy, Captured, NoApplicationFrame, OverheadMeter};
use pcap_types::{Pc, Pid};
use serde::{Deserialize, Serialize};

/// Which protection/linkage domain a stack frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// Code of the traced application itself.
    Application,
    /// Shared-library code (libc, codec libraries, …).
    Library,
    /// Kernel code.
    Kernel,
}

/// One frame of a simulated call stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Return address recorded in the frame.
    pub pc: Pc,
    /// Domain the frame's code belongs to.
    pub kind: FrameKind,
}

/// A simulated call stack, bottom (outermost, e.g. `main`) to top
/// (innermost). See the [crate docs](crate) for an example.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallStack {
    frames: Vec<Frame>,
}

impl CallStack {
    /// Creates an empty stack.
    pub fn new() -> CallStack {
        CallStack::default()
    }

    /// Pushes a frame (a call).
    pub fn push(&mut self, pc: Pc, kind: FrameKind) {
        self.frames.push(Frame { pc, kind });
    }

    /// Pops the innermost frame (a return). Returns it, or `None` if the
    /// stack is empty.
    pub fn pop(&mut self) -> Option<Frame> {
        self.frames.pop()
    }

    /// The frames, outermost first.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True if no frames are on the stack.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// A process whose I/O calls flow through the simulated capture layer.
///
/// The workload generator pushes application frames as its activity
/// model descends into functions, then calls
/// [`issue_io`](InstrumentedProcess::issue_io), which wraps the call in
/// the library frames a real `fread`/`fwrite` would add, captures the PC
/// with the configured strategy, and accounts the overhead.
///
/// ```
/// use pcap_capture::{CaptureStrategy, FrameKind, InstrumentedProcess};
/// use pcap_types::{Pc, Pid};
///
/// let mut p = InstrumentedProcess::new(Pid(1), CaptureStrategy::LibraryHook);
/// p.enter(Pc(0x1000)); // main
/// p.enter(Pc(0x1200)); // load_document
/// let captured = p.issue_io(2).unwrap();
/// assert_eq!(captured.pc, Pc(0x1200));
/// p.leave();
/// assert_eq!(p.stack().depth(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct InstrumentedProcess {
    pid: Pid,
    strategy: CaptureStrategy,
    stack: CallStack,
    meter: OverheadMeter,
}

/// Base address of the simulated shared-library text segment; library
/// frames get synthetic PCs here so they can never collide with
/// application PCs produced by [`crate::SiteMap`].
const LIBRARY_TEXT_BASE: u32 = 0x7f00_0000;

impl InstrumentedProcess {
    /// Creates a process with an empty stack.
    pub fn new(pid: Pid, strategy: CaptureStrategy) -> InstrumentedProcess {
        InstrumentedProcess {
            pid,
            strategy,
            stack: CallStack::new(),
            meter: OverheadMeter::new(),
        }
    }

    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The capture strategy in use.
    pub fn strategy(&self) -> CaptureStrategy {
        self.strategy
    }

    /// The current stack.
    pub fn stack(&self) -> &CallStack {
        &self.stack
    }

    /// Accumulated capture overhead.
    pub fn meter(&self) -> &OverheadMeter {
        &self.meter
    }

    /// Enters an application function whose call site is `pc`.
    pub fn enter(&mut self, pc: Pc) {
        self.stack.push(pc, FrameKind::Application);
    }

    /// Returns from the innermost application function.
    ///
    /// # Panics
    ///
    /// Panics if the innermost frame is not an application frame (the
    /// library frames of an I/O call are popped by
    /// [`issue_io`](Self::issue_io) itself).
    pub fn leave(&mut self) {
        let f = self.stack.pop().expect("leave() on empty stack");
        assert_eq!(
            f.kind,
            FrameKind::Application,
            "leave() must pop an application frame"
        );
    }

    /// Performs one I/O call: pushes `library_depth` library frames (the
    /// stdio wrapper chain), captures the application PC with the
    /// configured strategy, records the overhead, and unwinds the
    /// library frames again.
    ///
    /// # Errors
    ///
    /// Returns [`NoApplicationFrame`] if no application frame is on the
    /// stack.
    pub fn issue_io(&mut self, library_depth: u32) -> Result<Captured, NoApplicationFrame> {
        for i in 0..library_depth {
            self.stack
                .push(Pc(LIBRARY_TEXT_BASE + i), FrameKind::Library);
        }
        let result = self.strategy.capture(&self.stack);
        for _ in 0..library_depth {
            self.stack.pop();
        }
        let captured = result?;
        self.meter.record(captured.cost);
        Ok(captured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_push_pop() {
        let mut s = CallStack::new();
        assert!(s.is_empty());
        s.push(Pc(1), FrameKind::Application);
        s.push(Pc(2), FrameKind::Library);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.pop().unwrap().pc, Pc(2));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn issue_io_restores_stack() {
        let mut p = InstrumentedProcess::new(Pid(9), CaptureStrategy::SyscallInterception);
        p.enter(Pc(0x10));
        p.enter(Pc(0x20));
        let before = p.stack().clone();
        let c = p.issue_io(3).unwrap();
        assert_eq!(c.pc, Pc(0x20));
        assert_eq!(p.stack(), &before, "library frames must unwind");
        assert_eq!(c.cost.frames_walked, 3);
    }

    #[test]
    fn issue_io_records_overhead() {
        let mut p = InstrumentedProcess::new(Pid(1), CaptureStrategy::LibraryHook);
        p.enter(Pc(0x10));
        p.issue_io(2).unwrap();
        p.issue_io(2).unwrap();
        assert_eq!(p.meter().captures, 2);
        assert_eq!(p.meter().memory_accesses, 8);
    }

    #[test]
    fn issue_io_without_app_frame_errors_and_unwinds() {
        let mut p = InstrumentedProcess::new(Pid(1), CaptureStrategy::LibraryHook);
        assert_eq!(p.issue_io(2), Err(NoApplicationFrame));
        assert!(p.stack().is_empty());
        assert_eq!(p.meter().captures, 0);
    }

    #[test]
    #[should_panic(expected = "application frame")]
    fn leave_refuses_library_frame() {
        let mut p = InstrumentedProcess::new(Pid(1), CaptureStrategy::LibraryHook);
        p.stack.push(Pc(0x7f00_0000), FrameKind::Library);
        p.leave();
    }

    #[test]
    fn nested_io_attributes_to_innermost_app_frame() {
        let mut p = InstrumentedProcess::new(Pid(1), CaptureStrategy::KernelHook);
        p.enter(Pc(0xa));
        p.enter(Pc(0xb));
        p.enter(Pc(0xc));
        assert_eq!(p.issue_io(1).unwrap().pc, Pc(0xc));
        p.leave();
        assert_eq!(p.issue_io(1).unwrap().pc, Pc(0xb));
    }
}
