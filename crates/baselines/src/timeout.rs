//! The fixed timeout predictor (TP).

use pcap_core::{IdlePredictor, ShutdownVote};
use pcap_types::{DiskAccess, SimDuration};

/// The simple timeout predictor: after every access, vote to shut down
/// once the device has been idle for a fixed timeout.
///
/// The paper uses 10 s ("results in low mispredictions and good energy
/// savings in our applications") and examines the aggressive
/// breakeven-valued timeout of Karlin et al. in §6.3.
///
/// ```
/// use pcap_baselines::TimeoutPredictor;
/// use pcap_core::IdlePredictor;
/// use pcap_types::SimDuration;
/// # let access = pcap_types::DiskAccess {
/// #     time: pcap_types::SimTime::ZERO, pid: pcap_types::Pid(1),
/// #     pc: pcap_types::Pc(1), fd: pcap_types::Fd(0),
/// #     kind: pcap_types::IoKind::Read, pages: 1 };
///
/// let mut tp = TimeoutPredictor::paper(); // 10 s
/// let vote = tp.on_access(&access, SimDuration::ZERO);
/// assert_eq!(vote.delay, Some(SimDuration::from_secs(10)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeoutPredictor {
    timeout: SimDuration,
}

impl TimeoutPredictor {
    /// A timeout predictor with the given timeout.
    pub fn new(timeout: SimDuration) -> TimeoutPredictor {
        TimeoutPredictor { timeout }
    }

    /// The paper's 10-second configuration.
    pub fn paper() -> TimeoutPredictor {
        TimeoutPredictor::new(SimDuration::from_secs(10))
    }

    /// The Karlin-style competitive configuration: timeout = breakeven
    /// (5.43 s for the Table 2 disk).
    pub fn breakeven() -> TimeoutPredictor {
        TimeoutPredictor::new(SimDuration::from_secs_f64(5.43))
    }

    /// The configured timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

impl IdlePredictor for TimeoutPredictor {
    fn name(&self) -> String {
        "TP".to_owned()
    }

    fn on_access(&mut self, _access: &DiskAccess, _upcoming_idle: SimDuration) -> ShutdownVote {
        ShutdownVote::after(self.timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_types::{Fd, IoKind, Pc, Pid, SimTime};

    fn access() -> DiskAccess {
        DiskAccess {
            time: SimTime::ZERO,
            pid: Pid(1),
            pc: Pc(1),
            fd: Fd(0),
            kind: IoKind::Read,
            pages: 1,
        }
    }

    #[test]
    fn always_votes_timeout() {
        let mut tp = TimeoutPredictor::paper();
        for _ in 0..3 {
            let v = tp.on_access(&access(), SimDuration::from_secs(100));
            assert_eq!(v.delay, Some(SimDuration::from_secs(10)));
        }
        tp.on_idle_end(SimDuration::from_secs(1));
        tp.on_run_end();
        assert_eq!(tp.name(), "TP");
    }

    #[test]
    fn breakeven_variant() {
        assert_eq!(
            TimeoutPredictor::breakeven().timeout(),
            SimDuration::from_secs_f64(5.43)
        );
    }
}
