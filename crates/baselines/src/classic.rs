//! Classic dynamic shutdown predictors from the paper's related-work
//! section (§2), implemented as extension baselines.

use pcap_core::{IdlePredictor, ShutdownVote};
use pcap_types::{DiskAccess, SimDuration, SimTime};

/// Hwang & Wu's exponential-average predictor: the next idle period is
/// estimated as a weighted average of the previous estimate and the
/// previous actual idle period,
/// `Iₙ₊₁ = a·iₙ + (1 − a)·Iₙ` (§2: "the length of an idle period could
/// be predicted using a weighted average of the predicted and the
/// actual lengths of the previous idle period").
///
/// A shutdown is predicted (after the wait-window) whenever the estimate
/// exceeds the breakeven time.
#[derive(Debug, Clone, PartialEq)]
pub struct ExponentialAverage {
    alpha: f64,
    wait_window: SimDuration,
    breakeven: SimDuration,
    estimate: SimDuration,
}

impl ExponentialAverage {
    /// Creates a predictor with smoothing factor `alpha` ∈ (0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside (0, 1].
    pub fn new(alpha: f64, wait_window: SimDuration, breakeven: SimDuration) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        ExponentialAverage {
            alpha,
            wait_window,
            breakeven,
            estimate: SimDuration::ZERO,
        }
    }

    /// The common configuration: α = 0.5, 1 s wait-window, 5.43 s
    /// breakeven.
    pub fn paper_setting() -> Self {
        ExponentialAverage::new(
            0.5,
            SimDuration::from_secs(1),
            SimDuration::from_secs_f64(5.43),
        )
    }

    /// The current idle-length estimate.
    pub fn estimate(&self) -> SimDuration {
        self.estimate
    }
}

impl IdlePredictor for ExponentialAverage {
    fn name(&self) -> String {
        "ExpAvg".to_owned()
    }

    fn on_access(&mut self, _access: &DiskAccess, _upcoming_idle: SimDuration) -> ShutdownVote {
        if self.estimate > self.breakeven {
            ShutdownVote::after(self.wait_window)
        } else {
            ShutdownVote::NO_PREDICTION
        }
    }

    fn on_idle_end(&mut self, idle: SimDuration) {
        let next =
            self.alpha * idle.as_secs_f64() + (1.0 - self.alpha) * self.estimate.as_secs_f64();
        self.estimate = SimDuration::from_secs_f64(next);
    }

    fn on_run_end(&mut self) {
        self.estimate = SimDuration::ZERO;
    }
}

/// A feedback-adjusted timeout in the style of Douglis et al. and
/// Golding et al. (§2: "Both methods used feedback to enlarge or to
/// reduce the timeout based on whether the previous prediction was
/// correct. If it was correct, the timeout was reduced; otherwise, it
/// was enlarged.")
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveTimeout {
    timeout: SimDuration,
    min: SimDuration,
    max: SimDuration,
    breakeven: SimDuration,
    /// Multiplicative decrease on a correct shutdown.
    shrink: f64,
    /// Multiplicative increase on a wasteful shutdown.
    grow: f64,
}

impl AdaptiveTimeout {
    /// Creates an adaptive timeout starting at `initial`, clamped to
    /// `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `initial` lies outside the range.
    pub fn new(
        initial: SimDuration,
        min: SimDuration,
        max: SimDuration,
        breakeven: SimDuration,
    ) -> Self {
        assert!(min <= max, "min timeout must not exceed max");
        assert!(
            (min..=max).contains(&initial),
            "initial timeout outside [min, max]"
        );
        AdaptiveTimeout {
            timeout: initial,
            min,
            max,
            breakeven,
            shrink: 0.9,
            grow: 2.0,
        }
    }

    /// A sensible default: start at 10 s, range [1 s, 60 s], 5.43 s
    /// breakeven.
    pub fn paper_setting() -> Self {
        AdaptiveTimeout::new(
            SimDuration::from_secs(10),
            SimDuration::from_secs(1),
            SimDuration::from_secs(60),
            SimDuration::from_secs_f64(5.43),
        )
    }

    /// The current timeout value.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    fn clamp(&self, t: f64) -> SimDuration {
        SimDuration::from_secs_f64(t.clamp(self.min.as_secs_f64(), self.max.as_secs_f64()))
    }
}

impl IdlePredictor for AdaptiveTimeout {
    fn name(&self) -> String {
        "AdaptTO".to_owned()
    }

    fn on_access(&mut self, _access: &DiskAccess, _upcoming_idle: SimDuration) -> ShutdownVote {
        ShutdownVote::after(self.timeout)
    }

    fn on_idle_end(&mut self, idle: SimDuration) {
        if idle <= self.timeout {
            // The timeout never fired: no feedback.
            return;
        }
        let off = idle - self.timeout;
        let t = self.timeout.as_secs_f64();
        self.timeout = if off > self.breakeven {
            // Correct shutdown: be more aggressive next time.
            self.clamp(t * self.shrink)
        } else {
            // The device-off interval did not pay for the power cycle:
            // back off.
            self.clamp(t * self.grow)
        };
    }
}

/// Srivastava, Chandrakasan & Brodersen's "L-shape" rule (§2: "A long
/// idle period often followed a short busy period").
///
/// A *busy period* is a burst of accesses separated by gaps no longer
/// than the burst threshold. When a burst has been running for less
/// than `busy_threshold` at the time an access completes, the following
/// idle period is predicted long.
#[derive(Debug, Clone, PartialEq)]
pub struct LastBusy {
    busy_threshold: SimDuration,
    burst_gap: SimDuration,
    wait_window: SimDuration,
    burst_start: Option<SimTime>,
    last_access: Option<SimTime>,
}

impl LastBusy {
    /// Creates the predictor: bursts are separated by gaps longer than
    /// `burst_gap`; bursts shorter than `busy_threshold` predict a long
    /// idle period `wait_window` after their last access.
    pub fn new(
        busy_threshold: SimDuration,
        burst_gap: SimDuration,
        wait_window: SimDuration,
    ) -> Self {
        LastBusy {
            busy_threshold,
            burst_gap,
            wait_window,
            burst_start: None,
            last_access: None,
        }
    }

    /// A sensible default: 2 s busy threshold, 1 s burst gap, 1 s
    /// wait-window.
    pub fn paper_setting() -> Self {
        LastBusy::new(
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        )
    }
}

impl IdlePredictor for LastBusy {
    fn name(&self) -> String {
        "LastBusy".to_owned()
    }

    fn on_access(&mut self, access: &DiskAccess, _upcoming_idle: SimDuration) -> ShutdownVote {
        let now = access.time;
        let burst_start = match (self.burst_start, self.last_access) {
            (Some(start), Some(last)) if now.saturating_since(last) <= self.burst_gap => start,
            _ => now,
        };
        self.burst_start = Some(burst_start);
        self.last_access = Some(now);
        if now.saturating_since(burst_start) < self.busy_threshold {
            ShutdownVote::after(self.wait_window)
        } else {
            ShutdownVote::NO_PREDICTION
        }
    }

    fn on_run_end(&mut self) {
        self.burst_start = None;
        self.last_access = None;
    }
}

/// A stationary stochastic predictor in the spirit of Benini et
/// al. / Chung et al. (§2): model idle-period lengths as draws from a
/// stationary distribution estimated online, and shut down when the
/// *expected* energy of spinning down beats spinning idle.
///
/// With `p = P(idle > breakeven)` estimated over a sliding window of
/// recent idle periods, shutting down after the wait-window pays off
/// when `p · E[saving | long] > (1 − p) · E[loss | short]`. Both
/// conditional expectations are estimated from the same window, so the
/// policy adapts when the workload drifts — the non-stationarity
/// problem §2 notes for offline stochastic methods.
#[derive(Debug, Clone)]
pub struct Stochastic {
    window: std::collections::VecDeque<SimDuration>,
    capacity: usize,
    wait_window: SimDuration,
    breakeven: SimDuration,
    /// Minimum observations before the model dares to predict.
    warmup: usize,
}

impl Stochastic {
    /// Creates a predictor with a sliding window of `capacity` idle
    /// periods.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, wait_window: SimDuration, breakeven: SimDuration) -> Stochastic {
        assert!(capacity > 0, "window capacity must be positive");
        Stochastic {
            window: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            wait_window,
            breakeven,
            warmup: 8.min(capacity),
        }
    }

    /// A sensible default: 64-period window, 1 s wait-window, 5.43 s
    /// breakeven.
    pub fn paper_setting() -> Stochastic {
        Stochastic::new(
            64,
            SimDuration::from_secs(1),
            SimDuration::from_secs_f64(5.43),
        )
    }

    /// The current estimate of `P(idle > breakeven)` (0.0 before any
    /// observation).
    pub fn p_long(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let long = self.window.iter().filter(|g| **g > self.breakeven).count();
        long as f64 / self.window.len() as f64
    }

    /// Expected-benefit test: positive iff shutting down after the
    /// wait-window is expected to save energy under the estimated
    /// distribution.
    fn expected_benefit_positive(&self) -> bool {
        if self.window.len() < self.warmup {
            return false;
        }
        let be = self.breakeven.as_secs_f64();
        let ww = self.wait_window.as_secs_f64();
        let mut gain = 0.0;
        for gap in &self.window {
            let g = gap.as_secs_f64();
            if g > ww {
                // Off interval if we shut down at the wait-window; the
                // saving is proportional to (off − breakeven), which is
                // negative (a loss) for short periods.
                gain += (g - ww) - be;
            }
        }
        gain > 0.0
    }
}

impl IdlePredictor for Stochastic {
    fn name(&self) -> String {
        "Stochastic".to_owned()
    }

    fn on_access(&mut self, _access: &DiskAccess, _upcoming_idle: SimDuration) -> ShutdownVote {
        if self.expected_benefit_positive() {
            ShutdownVote::after(self.wait_window)
        } else {
            ShutdownVote::NO_PREDICTION
        }
    }

    fn on_idle_end(&mut self, idle: SimDuration) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(idle);
    }

    fn on_run_end(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_types::{Fd, IoKind, Pc, Pid};

    fn access_at(t_ms: u64) -> DiskAccess {
        DiskAccess {
            time: SimTime::from_millis(t_ms),
            pid: Pid(1),
            pc: Pc(1),
            fd: Fd(0),
            kind: IoKind::Read,
            pages: 1,
        }
    }

    #[test]
    fn exp_avg_tracks_long_idles() {
        let mut p = ExponentialAverage::paper_setting();
        let v = p.on_access(&access_at(0), SimDuration::ZERO);
        assert_eq!(v, ShutdownVote::NO_PREDICTION, "estimate starts at zero");
        // Two 20 s idles push the estimate over breakeven.
        p.on_idle_end(SimDuration::from_secs(20)); // est 10
        let v = p.on_access(&access_at(1), SimDuration::ZERO);
        assert_eq!(v.delay, Some(SimDuration::from_secs(1)));
        // A string of short idles pulls it back down.
        for _ in 0..4 {
            p.on_idle_end(SimDuration::from_millis(200));
        }
        let v = p.on_access(&access_at(2), SimDuration::ZERO);
        assert_eq!(v, ShutdownVote::NO_PREDICTION);
        assert!(p.estimate() < SimDuration::from_secs(1));
    }

    #[test]
    fn exp_avg_resets_per_run() {
        let mut p = ExponentialAverage::paper_setting();
        p.on_idle_end(SimDuration::from_secs(60));
        p.on_run_end();
        assert_eq!(p.estimate(), SimDuration::ZERO);
        assert_eq!(p.name(), "ExpAvg");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = ExponentialAverage::new(0.0, SimDuration::ZERO, SimDuration::ZERO);
    }

    #[test]
    fn adaptive_timeout_shrinks_on_success() {
        let mut p = AdaptiveTimeout::paper_setting();
        let before = p.timeout();
        p.on_idle_end(SimDuration::from_secs(60)); // off = 50 s ≫ breakeven
        assert!(p.timeout() < before);
    }

    #[test]
    fn adaptive_timeout_grows_on_waste() {
        let mut p = AdaptiveTimeout::paper_setting();
        // Idle 12 s with a 10 s timeout: off interval 2 s < breakeven.
        p.on_idle_end(SimDuration::from_secs(12));
        assert_eq!(p.timeout(), SimDuration::from_secs(20));
        // Clamped at the maximum.
        for _ in 0..10 {
            p.on_idle_end(p.timeout() + SimDuration::from_secs(1));
        }
        assert!(p.timeout() <= SimDuration::from_secs(60));
    }

    #[test]
    fn adaptive_timeout_ignores_unfired_idles() {
        let mut p = AdaptiveTimeout::paper_setting();
        p.on_idle_end(SimDuration::from_secs(5)); // below timeout
        assert_eq!(p.timeout(), SimDuration::from_secs(10));
        assert_eq!(
            p.on_access(&access_at(0), SimDuration::ZERO).delay,
            Some(SimDuration::from_secs(10))
        );
        assert_eq!(p.name(), "AdaptTO");
    }

    #[test]
    #[should_panic(expected = "min timeout")]
    fn adaptive_timeout_bad_range_panics() {
        let _ = AdaptiveTimeout::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(9),
            SimDuration::from_secs(1),
            SimDuration::from_secs(5),
        );
    }

    #[test]
    fn last_busy_predicts_after_short_burst() {
        let mut p = LastBusy::paper_setting();
        // Burst of three accesses 100 ms apart: total burst 200 ms < 2 s.
        p.on_access(&access_at(0), SimDuration::ZERO);
        p.on_access(&access_at(100), SimDuration::ZERO);
        let v = p.on_access(&access_at(200), SimDuration::ZERO);
        assert_eq!(v.delay, Some(SimDuration::from_secs(1)));
    }

    #[test]
    fn last_busy_abstains_after_long_burst() {
        let mut p = LastBusy::paper_setting();
        let mut v = ShutdownVote::NO_PREDICTION;
        // A 3-second burst of accesses 100 ms apart.
        for i in 0..31 {
            v = p.on_access(&access_at(i * 100), SimDuration::ZERO);
        }
        assert_eq!(v, ShutdownVote::NO_PREDICTION);
        // A gap above burst_gap starts a new burst: predicting again.
        let v = p.on_access(&access_at(31 * 100 + 5000), SimDuration::ZERO);
        assert_eq!(v.delay, Some(SimDuration::from_secs(1)));
    }

    #[test]
    fn stochastic_needs_warmup() {
        let mut p = Stochastic::paper_setting();
        assert_eq!(
            p.on_access(&access_at(0), SimDuration::ZERO),
            ShutdownVote::NO_PREDICTION
        );
        assert_eq!(p.p_long(), 0.0);
    }

    #[test]
    fn stochastic_predicts_under_long_heavy_distributions() {
        let mut p = Stochastic::paper_setting();
        for _ in 0..16 {
            p.on_idle_end(SimDuration::from_secs(60));
        }
        let v = p.on_access(&access_at(0), SimDuration::ZERO);
        assert_eq!(v.delay, Some(SimDuration::from_secs(1)));
        assert!((p.p_long() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stochastic_abstains_under_short_heavy_distributions() {
        let mut p = Stochastic::paper_setting();
        for _ in 0..32 {
            p.on_idle_end(SimDuration::from_secs(2));
        }
        assert_eq!(
            p.on_access(&access_at(0), SimDuration::ZERO),
            ShutdownVote::NO_PREDICTION
        );
    }

    #[test]
    fn stochastic_adapts_to_drift() {
        let mut p = Stochastic::new(
            16,
            SimDuration::from_secs(1),
            SimDuration::from_secs_f64(5.43),
        );
        for _ in 0..16 {
            p.on_idle_end(SimDuration::from_secs(60));
        }
        assert!(p
            .on_access(&access_at(0), SimDuration::ZERO)
            .delay
            .is_some());
        // The workload turns bursty: the window slides, the policy flips.
        for _ in 0..16 {
            p.on_idle_end(SimDuration::from_secs(2));
        }
        assert_eq!(
            p.on_access(&access_at(1), SimDuration::ZERO),
            ShutdownVote::NO_PREDICTION
        );
        p.on_run_end();
        assert_eq!(p.p_long(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window capacity")]
    fn stochastic_zero_capacity_panics() {
        let _ = Stochastic::new(0, SimDuration::ZERO, SimDuration::ZERO);
    }

    #[test]
    fn last_busy_resets_per_run() {
        let mut p = LastBusy::paper_setting();
        for i in 0..31 {
            p.on_access(&access_at(i * 100), SimDuration::ZERO);
        }
        p.on_run_end();
        let v = p.on_access(&access_at(3100), SimDuration::ZERO);
        assert_eq!(v.delay, Some(SimDuration::from_secs(1)));
        assert_eq!(p.name(), "LastBusy");
    }
}
