//! The adaptive Learning Tree of Chung, Benini & De Micheli (ICCAD
//! 1999), as configured by the paper for its LT comparison.
//!
//! LT predicts the class of the next idle period from the *pattern of
//! recent idle periods*: idle lengths are discretized (here into
//! short/long around the breakeven time, with sub-wait-window periods
//! filtered out, exactly as the paper's PCAPh history does), and a tree
//! over recent-period sequences holds a saturating confidence counter
//! per observed pattern. The paper runs LT with a history length of
//! eight ("longer history lengths do not improve accuracy").

use pcap_core::history::HistoryBits;
use pcap_core::{HistoryTracker, IdlePredictor, ShutdownVote};
use pcap_trace::idle::GapClass;
use pcap_types::{DiskAccess, SimDuration};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Configuration of a [`LearningTree`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LtConfig {
    /// Idle-period history length (the paper uses 8).
    pub history_len: usize,
    /// Sliding wait-window (shared with PCAP; 1 s).
    pub wait_window: SimDuration,
    /// Breakeven time (5.43 s for the Table 2 disk).
    pub breakeven: SimDuration,
    /// Saturating-counter ceiling.
    pub counter_max: u8,
    /// Counter value at or above which "long" is predicted.
    pub predict_threshold: u8,
    /// Counter value assigned when a pattern is first observed to
    /// precede a long idle period (≥ `predict_threshold` makes LT
    /// predict after a single observation, the fast learning the paper
    /// notes in §6.1).
    pub initial_confidence: u8,
}

impl LtConfig {
    /// The paper's configuration: history 8, 1 s wait-window, 5.43 s
    /// breakeven, 2-bit counters predicting at ≥ 2 and starting at 2.
    pub fn paper() -> LtConfig {
        LtConfig {
            history_len: 8,
            wait_window: SimDuration::from_secs(1),
            breakeven: SimDuration::from_secs_f64(5.43),
            counter_max: 3,
            predict_threshold: 2,
            initial_confidence: 2,
        }
    }
}

impl Default for LtConfig {
    fn default() -> Self {
        LtConfig::paper()
    }
}

/// The learned tree: observed idle-period patterns → confidence that a
/// long idle period follows.
///
/// Patterns of every length up to the history length are stored, so a
/// partially filled history (early in a run) can still match.
#[derive(Debug, Clone, Default)]
pub struct TreeTable {
    nodes: HashMap<HistoryBits, u8>,
}

impl TreeTable {
    /// Number of learned patterns (the LT analogue of Table 3 storage).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing was learned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Discards all learned patterns (LTa configuration).
    pub fn clear(&mut self) {
        self.nodes.clear();
    }
}

/// A [`TreeTable`] shared by all processes of one application, like
/// PCAP's [`SharedTable`](pcap_core::SharedTable).
#[derive(Debug, Clone, Default)]
pub struct SharedTree(Rc<RefCell<TreeTable>>);

impl SharedTree {
    /// A fresh empty shared tree.
    pub fn new() -> SharedTree {
        SharedTree::default()
    }

    /// Number of learned patterns.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True if nothing was learned yet.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// Discards all learned patterns.
    pub fn clear(&self) {
        self.0.borrow_mut().clear()
    }

    /// True if the tree predicts a long idle period for the current
    /// history: tree descent along the most recent periods — the
    /// **deepest stored suffix** is the most specific context observed
    /// before, and its confidence decides.
    fn predict(&self, history: HistoryBits, config: &LtConfig) -> bool {
        let table = self.0.borrow();
        for k in (1..=history.len).rev() {
            if let Some(&c) = table.nodes.get(&suffix(history, k)) {
                return c >= config.predict_threshold;
            }
        }
        false
    }

    /// Trains every suffix of the history on the observed outcome:
    /// existing nodes saturate up (long) or decay down (short); unseen
    /// contexts enter the tree confident after a long outcome and
    /// pessimistic after a short one, so the deepest-suffix descent can
    /// veto shallow over-generalizations.
    fn train(&self, history: HistoryBits, long: bool, config: &LtConfig) {
        let mut table = self.0.borrow_mut();
        for k in 1..=history.len {
            match table.nodes.entry(suffix(history, k)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let c = e.get_mut();
                    if long {
                        *c = (*c + 1).min(config.counter_max);
                    } else {
                        *c = c.saturating_sub(1);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(if long { config.initial_confidence } else { 0 });
                }
            }
        }
    }
}

/// The `k` most recent periods of a history window.
fn suffix(history: HistoryBits, k: u8) -> HistoryBits {
    HistoryBits {
        bits: history.bits & ((1u32 << k) - 1),
        len: k,
    }
}

/// One process's Learning Tree predictor.
///
/// ```
/// use pcap_baselines::{LearningTree, LtConfig, SharedTree};
/// use pcap_core::IdlePredictor;
/// use pcap_types::SimDuration;
/// # let access = pcap_types::DiskAccess {
/// #     time: pcap_types::SimTime::ZERO, pid: pcap_types::Pid(1),
/// #     pc: pcap_types::Pc(1), fd: pcap_types::Fd(0),
/// #     kind: pcap_types::IoKind::Read, pages: 1 };
///
/// let mut lt = LearningTree::new(LtConfig::paper(), SharedTree::new());
/// // Two short periods then a long one (Figure 2's repetitive pattern).
/// for gap in [3u64, 3, 20, 3, 3] {
///     lt.on_access(&access, SimDuration::ZERO);
///     lt.on_idle_end(SimDuration::from_secs(gap));
/// }
/// // The [short, short] context was learned to precede a long period.
/// let vote = lt.on_access(&access, SimDuration::ZERO);
/// assert_eq!(vote.delay, Some(SimDuration::from_secs(1)));
/// ```
#[derive(Debug, Clone)]
pub struct LearningTree {
    config: LtConfig,
    tree: SharedTree,
    history: HistoryTracker,
}

impl LearningTree {
    /// Creates a predictor for one process sharing `tree` with the rest
    /// of the application.
    pub fn new(config: LtConfig, tree: SharedTree) -> LearningTree {
        let history = HistoryTracker::new(config.history_len);
        LearningTree {
            config,
            tree,
            history,
        }
    }

    /// The shared tree.
    pub fn tree(&self) -> &SharedTree {
        &self.tree
    }

    /// The configuration in use.
    pub fn config(&self) -> &LtConfig {
        &self.config
    }
}

impl IdlePredictor for LearningTree {
    fn name(&self) -> String {
        "LT".to_owned()
    }

    fn on_access(&mut self, _access: &DiskAccess, _upcoming_idle: SimDuration) -> ShutdownVote {
        if self.history.is_empty() {
            return ShutdownVote::NO_PREDICTION;
        }
        if self.tree.predict(self.history.bits(), &self.config) {
            ShutdownVote::after(self.config.wait_window)
        } else {
            ShutdownVote::NO_PREDICTION
        }
    }

    fn on_idle_end(&mut self, idle: SimDuration) {
        let class = GapClass::of(idle, self.config.wait_window, self.config.breakeven);
        let Some(bit) = class.history_bit() else {
            return; // sub-wait-window periods are filtered out
        };
        if !self.history.is_empty() {
            self.tree
                .train(self.history.bits(), class == GapClass::Long, &self.config);
        }
        self.history.push(bit);
    }

    fn on_run_end(&mut self) {
        // History is per-execution; the tree persists (reuse is managed
        // by the owner, as with PCAP's table).
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_types::{Fd, IoKind, Pc, Pid, SimTime};

    fn access() -> DiskAccess {
        DiskAccess {
            time: SimTime::ZERO,
            pid: Pid(1),
            pc: Pc(1),
            fd: Fd(0),
            kind: IoKind::Read,
            pages: 1,
        }
    }

    const SHORT: SimDuration = SimDuration(3_000_000); // 3 s
    const LONG: SimDuration = SimDuration(20_000_000); // 20 s
    const TINY: SimDuration = SimDuration(100_000); // 0.1 s

    fn drive(lt: &mut LearningTree, gaps: &[SimDuration]) -> Vec<ShutdownVote> {
        gaps.iter()
            .map(|&g| {
                let v = lt.on_access(&access(), SimDuration::ZERO);
                lt.on_idle_end(g);
                v
            })
            .collect()
    }

    #[test]
    fn figure2_pattern_learned() {
        let mut lt = LearningTree::new(LtConfig::paper(), SharedTree::new());
        // short, short, LONG — then repeat the two shorts.
        drive(&mut lt, &[SHORT, SHORT, LONG, SHORT, SHORT]);
        let v = lt.on_access(&access(), SimDuration::ZERO);
        assert_eq!(
            v.delay,
            Some(SimDuration::from_secs(1)),
            "two shorts now predict a long period"
        );
    }

    #[test]
    fn no_prediction_before_any_history() {
        let mut lt = LearningTree::new(LtConfig::paper(), SharedTree::new());
        let v = lt.on_access(&access(), SimDuration::ZERO);
        assert_eq!(v, ShutdownVote::NO_PREDICTION);
    }

    #[test]
    fn sub_window_gaps_do_not_enter_history() {
        let mut lt = LearningTree::new(LtConfig::paper(), SharedTree::new());
        drive(&mut lt, &[SHORT, TINY, TINY, LONG]);
        // The history at training time was [short] (the tiny gaps were
        // filtered), so a fresh [short] context predicts.
        let mut lt2 = LearningTree::new(LtConfig::paper(), lt.tree().clone());
        drive(&mut lt2, &[SHORT]);
        let v = lt2.on_access(&access(), SimDuration::ZERO);
        assert_eq!(v.delay, Some(SimDuration::from_secs(1)));
    }

    #[test]
    fn mispredicting_pattern_loses_confidence() {
        let config = LtConfig::paper();
        let mut lt = LearningTree::new(config, SharedTree::new());
        // Learn: [short] → long (confidence 2).
        drive(&mut lt, &[SHORT, LONG]);
        // Contradict twice: [short] → short. Confidence 2 → 1 → 0.
        drive(&mut lt, &[SHORT, SHORT, SHORT]);
        // Context is [short] again; prediction must be gone.
        drive(&mut lt, &[SHORT]);
        let v = lt.on_access(&access(), SimDuration::ZERO);
        assert_eq!(v, ShutdownVote::NO_PREDICTION);
    }

    #[test]
    fn short_only_patterns_enter_pessimistic() {
        let mut lt = LearningTree::new(LtConfig::paper(), SharedTree::new());
        drive(&mut lt, &[SHORT, SHORT, SHORT, SHORT]);
        assert!(!lt.tree().is_empty());
        // ...and never predict a shutdown.
        let v = lt.on_access(&access(), SimDuration::ZERO);
        assert_eq!(v, ShutdownVote::NO_PREDICTION);
    }

    #[test]
    fn tree_is_shared_between_processes() {
        let tree = SharedTree::new();
        let mut a = LearningTree::new(LtConfig::paper(), tree.clone());
        drive(&mut a, &[SHORT, LONG]);
        let mut b = LearningTree::new(LtConfig::paper(), tree.clone());
        drive(&mut b, &[SHORT]);
        let v = b.on_access(&access(), SimDuration::ZERO);
        assert_eq!(v.delay, Some(SimDuration::from_secs(1)));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn run_end_clears_history_keeps_tree() {
        let mut lt = LearningTree::new(LtConfig::paper(), SharedTree::new());
        drive(&mut lt, &[SHORT, LONG]);
        lt.on_run_end();
        assert!(!lt.tree().is_empty());
        let v = lt.on_access(&access(), SimDuration::ZERO);
        assert_eq!(v, ShutdownVote::NO_PREDICTION, "fresh history after exit");
    }

    #[test]
    fn clear_emulates_lta() {
        let mut lt = LearningTree::new(LtConfig::paper(), SharedTree::new());
        drive(&mut lt, &[SHORT, LONG]);
        lt.tree().clear();
        assert!(lt.tree().is_empty());
        assert_eq!(lt.config().history_len, 8);
        assert_eq!(lt.name(), "LT");
    }
}
