//! Baseline shutdown predictors the paper compares PCAP against, plus
//! the classic dynamic predictors from its related-work section (§2).
//!
//! * [`TimeoutPredictor`] — the fixed timeout (TP) every OS ships; the
//!   paper's yardstick at 10 s (and 5.43 s = breakeven in §6.3),
//! * [`LearningTree`] — Chung et al.'s adaptive learning tree over
//!   discretized idle-period sequences (LT),
//! * [`Oracle`] — the ideal predictor of Figure 8, shutting down at the
//!   instant a long idle period begins and never otherwise,
//! * [`ExponentialAverage`] — Hwang & Wu's weighted-average idle-length
//!   predictor,
//! * [`AdaptiveTimeout`] — Douglis et al. / Golding et al.'s
//!   feedback-adjusted timeout,
//! * [`LastBusy`] — Srivastava et al.'s "short busy period ⇒ long idle
//!   period" (L-shape) rule,
//! * [`Stochastic`] — a stationary expected-benefit policy in the
//!   spirit of the Markov-model family (Benini/Chung/Qiu/Simunic),
//!   estimated online over a sliding window.
//!
//! All implement [`pcap_core::IdlePredictor`] from
//! [`pcap-core`](https://docs.rs/pcap-core), so the simulator, the
//! global predictor and the backup-timeout composition treat them
//! uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classic;
mod learning_tree;
mod oracle;
mod timeout;

pub use classic::{AdaptiveTimeout, ExponentialAverage, LastBusy, Stochastic};
pub use learning_tree::{LearningTree, LtConfig, SharedTree, TreeTable};
pub use oracle::Oracle;
pub use timeout::TimeoutPredictor;
