//! The ideal predictor of Figure 8.

use pcap_core::{IdlePredictor, ShutdownVote};
use pcap_types::{DiskAccess, SimDuration};

/// A clairvoyant predictor: shuts the disk down at the instant an idle
/// period longer than breakeven begins, and never touches it otherwise.
///
/// The paper's "Ideal" bar in Figure 8 — it still pays the power-cycle
/// energy of every (always correct) shutdown, so even it cannot save
/// 100%. This is the only predictor allowed to read the `upcoming_idle`
/// argument of [`IdlePredictor::on_access`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Oracle {
    breakeven: SimDuration,
}

impl Oracle {
    /// An oracle for a disk with the given breakeven time.
    pub fn new(breakeven: SimDuration) -> Oracle {
        Oracle { breakeven }
    }

    /// The Table 2 disk's oracle (5.43 s breakeven).
    pub fn paper() -> Oracle {
        Oracle::new(SimDuration::from_secs_f64(5.43))
    }
}

impl IdlePredictor for Oracle {
    fn name(&self) -> String {
        "Ideal".to_owned()
    }

    fn on_access(&mut self, _access: &DiskAccess, upcoming_idle: SimDuration) -> ShutdownVote {
        if upcoming_idle > self.breakeven {
            ShutdownVote::after(SimDuration::ZERO)
        } else {
            ShutdownVote::never()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_types::{Fd, IoKind, Pc, Pid, SimTime};

    fn access() -> DiskAccess {
        DiskAccess {
            time: SimTime::ZERO,
            pid: Pid(1),
            pc: Pc(1),
            fd: Fd(0),
            kind: IoKind::Read,
            pages: 1,
        }
    }

    #[test]
    fn shuts_down_immediately_for_long_gaps() {
        let mut o = Oracle::paper();
        let v = o.on_access(&access(), SimDuration::from_secs(60));
        assert_eq!(v.delay, Some(SimDuration::ZERO));
    }

    #[test]
    fn never_mispredicts_short_gaps() {
        let mut o = Oracle::paper();
        // Exactly breakeven does not pay off — strictly longer required.
        let v = o.on_access(&access(), SimDuration::from_secs_f64(5.43));
        assert_eq!(v.delay, None);
        let v = o.on_access(&access(), SimDuration::from_secs(1));
        assert_eq!(v.delay, None);
        assert_eq!(o.name(), "Ideal");
    }
}
