//! Shared newtypes and the trace event model used across the PCAP
//! dynamic-power-management reproduction.
//!
//! The paper ("Program Counter Based Techniques for Dynamic Power
//! Management", HPCA 2004) works on traces of I/O operations annotated
//! with the application **program counter** that triggered each
//! operation. This crate defines the vocabulary types every other crate
//! speaks:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time,
//! * [`Pc`], [`Pid`], [`Fd`], [`FileId`] — identifier newtypes,
//! * [`Signature`] — the 4-byte arithmetic encoding of a PC path (§3.2),
//! * [`IoEvent`], [`TraceEvent`] — the strace-like trace records (§6),
//! * [`DiskAccess`] — a post-file-cache physical disk access.
//!
//! # Example
//!
//! ```
//! use pcap_types::{Pc, Signature, SimTime};
//!
//! // Encode the paper's example path {PC1, PC2, PC1} into a signature.
//! let (pc1, pc2) = (Pc(0x1000), Pc(0x2000));
//! let sig = Signature::EMPTY.push(pc1).push(pc2).push(pc1);
//! assert_eq!(sig, Signature(0x4000));
//!
//! let t = SimTime::from_secs_f64(20.1);
//! assert_eq!(t.as_micros(), 20_100_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

pub mod collections;
pub mod event;
pub mod wire;

pub use collections::LruMap;
pub use event::{DiskAccess, IoEvent, IoKind, TraceEvent};
pub use wire::{WireError, WireReader};

/// An instant in simulated time, stored as integer microseconds since the
/// start of the containing trace run.
///
/// Integer storage keeps event ordering exact and simulation results
/// bit-reproducible across platforms; convert to seconds only for
/// reporting.
///
/// ```
/// use pcap_types::{SimDuration, SimTime};
/// let a = SimTime::from_secs_f64(1.5);
/// let b = a + SimDuration::from_millis(250);
/// assert_eq!((b - a).as_millis(), 250);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero: the start of a trace run.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or non-finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "SimTime must be non-negative");
        SimTime((s * 1e6).round() as u64)
    }

    /// Returns the instant as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant, saturating to zero if
    /// `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulated time, stored as integer microseconds.
///
/// Produced by subtracting two [`SimTime`] instants; see [`SimTime`] for
/// an example.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration; used as "never" in vote logic.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or non-finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimDuration must be non-negative"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// Returns the duration as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds on underflow.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// A program counter: the return address in the *application* code that
/// (transitively) triggered an I/O operation.
///
/// The paper obtains these by instrumenting the I/O library (§3.2.1); we
/// obtain them from [`pcap-capture`'s simulated
/// stacks](https://docs.rs/pcap-capture). Uniqueness across executions
/// of the same application is what lets prediction tables be reused.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Pc(pub u32);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A process identifier within one application trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// A POSIX-style file descriptor, used by the PCAPf variant (§4.1.2) as
/// extra prediction context.
///
/// The paper chose descriptors over on-disk file locations because they
/// show less cross-execution variability and keep the prediction table
/// small.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd:{}", self.0)
    }
}

/// A stable identifier for a file (stands in for the on-disk location in
/// the traces); the file cache keys pages by `(FileId, page_index)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file:{}", self.0)
    }
}

/// The 4-byte encoding of a path of I/O-triggering PCs (§3.2).
///
/// The paper encodes a path by *arithmetically adding* the PCs in it
/// (following Lai & Falsafi's last-touch predictors), trading a small
/// aliasing risk (`{PC1, PC2, PC1}` and `{PC1, PC1, PC2}` collide) for a
/// constant-size key and O(1) comparisons. The same trade-off is kept
/// here; aliasing is measurable via [`pcap-core`'s table
/// statistics](https://docs.rs/pcap-core).
///
/// ```
/// use pcap_types::{Pc, Signature};
/// let sig = [Pc(1), Pc(2), Pc(1)]
///     .into_iter()
///     .fold(Signature::EMPTY, Signature::push);
/// assert_eq!(sig, Signature(4));
/// // Order-insensitive by construction (documented aliasing):
/// let alias = [Pc(1), Pc(1), Pc(2)]
///     .into_iter()
///     .fold(Signature::EMPTY, Signature::push);
/// assert_eq!(sig, alias);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Signature(pub u32);

impl Signature {
    /// The signature of the empty path.
    pub const EMPTY: Signature = Signature(0);

    /// Returns the signature extended by one more I/O-triggering PC
    /// (wrapping 32-bit addition, as in the paper's 4-byte kernel
    /// variable).
    #[must_use]
    pub fn push(self, pc: Pc) -> Signature {
        Signature(self.0.wrapping_add(pc.0))
    }

    /// Encodes a whole path at once.
    pub fn of_path<I: IntoIterator<Item = Pc>>(path: I) -> Signature {
        path.into_iter().fold(Signature::EMPTY, Signature::push)
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig:{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<Pc> for Signature {
    fn from(pc: Pc) -> Signature {
        Signature(pc.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_roundtrip_secs() {
        let t = SimTime::from_secs_f64(12.345678);
        assert_eq!(t.as_micros(), 12_345_678);
        assert!((t.as_secs_f64() - 12.345678).abs() < 1e-9);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_secs(10);
        let b = a + SimDuration::from_millis(1500);
        assert_eq!(b - a, SimDuration::from_millis(1500));
        assert_eq!(b - SimDuration::from_millis(500), SimTime::from_secs(11));
    }

    #[test]
    fn saturating_since_is_zero_backwards() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(7);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_secs_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(6));
        assert_eq!(total * 2, SimDuration::from_secs(12));
        assert_eq!(total / 3, SimDuration::from_secs(2));
    }

    #[test]
    fn signature_matches_paper_example() {
        // Figure 3: path {PC1, PC2, PC1} encoded as PC1 + PC2 + PC1.
        let pc1 = Pc(0x0804_8000);
        let pc2 = Pc(0x0804_9000);
        let sig = Signature::of_path([pc1, pc2, pc1]);
        assert_eq!(
            sig.0,
            0x0804_8000u32
                .wrapping_add(0x0804_9000)
                .wrapping_add(0x0804_8000)
        );
    }

    #[test]
    fn signature_wraps_without_panic() {
        let sig = Signature::of_path([Pc(u32::MAX), Pc(2)]);
        assert_eq!(sig, Signature(1));
    }

    #[test]
    fn signature_aliasing_is_order_insensitive() {
        let a = Signature::of_path([Pc(1), Pc(2), Pc(1)]);
        let b = Signature::of_path([Pc(1), Pc(1), Pc(2)]);
        assert_eq!(a, b, "documented aliasing of the additive encoding");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Pc(0x10).to_string(), "pc:0x00000010");
        assert_eq!(Pid(3).to_string(), "pid:3");
        assert_eq!(Fd(4).to_string(), "fd:4");
        assert_eq!(FileId(9).to_string(), "file:9");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(format!("{:x}", Signature(0xff)), "ff");
    }

    #[test]
    fn serde_transparent() {
        let t: SimTime = serde_json::from_str("1500000").unwrap();
        assert_eq!(t, SimTime::from_millis(1500));
        assert_eq!(serde_json::to_string(&Pc(7)).unwrap(), "7");
    }
}
