//! Small utility collections shared across the workspace.
//!
//! [`LruMap`] backs the file cache (64 pages in the paper configuration) and the
//! optional prediction-table capacity limit in
//! [`pcap-core`](https://docs.rs/pcap-core). Recency is a monotone
//! per-entry sequence number: touching an entry is a single in-place
//! store on the hash-table hot path, and eviction scans for the minimum
//! sequence — `O(capacity)` but only on inserts into a full map, which
//! the unbounded prediction tables never hit. The whole structure
//! performs **zero heap allocations in steady state** (the streaming
//! fleet pipeline replays millions of devices through one cache, so the
//! per-access path must not churn the allocator): values live inline in
//! the table, eviction reuses the table's storage, and `clear` keeps
//! its capacity.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// A hash map bounded to `capacity` entries with least-recently-used
/// eviction.
///
/// `get_mut` and `insert` count as uses; `iter`/`peek` do not.
///
/// ```
/// use pcap_types::LruMap;
///
/// let mut m = LruMap::new(2);
/// m.insert("a", 1);
/// m.insert("b", 2);
/// m.get_mut(&"a");            // "a" is now the most recent
/// let evicted = m.insert("c", 3);
/// assert_eq!(evicted, Some(("b", 2)));
/// ```
#[derive(Debug, Clone)]
pub struct LruMap<K, V> {
    capacity: usize,
    next_seq: u64,
    entries: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// Creates a map bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> LruMap<K, V> {
        assert!(capacity > 0, "LruMap capacity must be positive");
        LruMap {
            capacity,
            next_seq: 0,
            entries: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let (seq, value) = self.entries.get_mut(key)?;
        *seq = self.next_seq;
        self.next_seq += 1;
        Some(value)
    }

    /// Looks up `key` without affecting recency.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.entries.get(key).map(|(_, v)| v)
    }

    /// Inserts `key → value`, marking it most recently used. Returns the
    /// evicted least-recent entry if the map was full, or `None` (also
    /// when `key` merely replaced its own previous value).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some((seq, old)) = self.entries.get_mut(&key) {
            *seq = self.next_seq;
            self.next_seq += 1;
            *old = value;
            return None;
        }
        let mut evicted = None;
        if self.entries.len() == self.capacity {
            // Scan for the stalest entry; sequence numbers are unique,
            // so the victim is deterministic.
            let victim_key = self
                .entries
                .iter()
                .min_by_key(|(_, (seq, _))| *seq)
                .map(|(k, _)| k.clone())
                .expect("full map has a minimum");
            let (_, victim_val) = self.entries.remove(&victim_key).expect("just found");
            evicted = Some((victim_key, victim_val));
        }
        self.entries.insert(key, (self.next_seq, value));
        self.next_seq += 1;
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.entries.remove(key).map(|(_, v)| v)
    }

    /// Iterates over entries in unspecified order without affecting
    /// recency.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, (_, v))| (k, v))
    }

    /// Mutable iteration in unspecified order without affecting recency.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.entries.iter_mut().map(|(k, (_, v))| (k, v))
    }

    /// Iterates over keys from least- to most-recently used, without
    /// affecting recency. The next key to be evicted comes first.
    ///
    /// Allocates a sorted snapshot — audit/report paths only; the
    /// simulation hot path never calls this.
    pub fn keys_by_recency(&self) -> impl Iterator<Item = &K> {
        let mut keys: Vec<(u64, &K)> = self.entries.iter().map(|(k, (seq, _))| (*seq, k)).collect();
        keys.sort_unstable_by_key(|&(seq, _)| seq);
        keys.into_iter().map(|(_, k)| k)
    }

    /// Removes all entries, keeping the table's capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut m = LruMap::new(4);
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.get_mut(&1), Some(&mut "a"));
        assert_eq!(m.get_mut(&2), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.capacity(), 4);
    }

    #[test]
    fn evicts_least_recent() {
        let mut m = LruMap::new(2);
        m.insert(1, "a");
        m.insert(2, "b");
        m.get_mut(&1);
        assert_eq!(m.insert(3, "c"), Some((2, "b")));
        assert!(m.peek(&1).is_some());
        assert!(m.peek(&2).is_none());
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut m = LruMap::new(2);
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.insert(1, "a2"), None);
        assert_eq!(m.peek(&1), Some(&"a2"));
        assert_eq!(m.len(), 2);
        // 2 is now least recent.
        assert_eq!(m.insert(3, "c"), Some((2, "b")));
    }

    #[test]
    fn peek_does_not_touch() {
        let mut m = LruMap::new(2);
        m.insert(1, "a");
        m.insert(2, "b");
        m.peek(&1);
        assert_eq!(m.insert(3, "c"), Some((1, "a")));
    }

    #[test]
    fn remove_frees_slot() {
        let mut m = LruMap::new(2);
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.remove(&1), Some("a"));
        assert_eq!(m.insert(3, "c"), None);
        assert_eq!(m.remove(&9), None);
    }

    #[test]
    fn clear_empties() {
        let mut m = LruMap::new(2);
        m.insert(1, "a");
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.insert(2, "b"), None);
    }

    #[test]
    fn long_sequence_respects_capacity() {
        let mut m = LruMap::new(8);
        for i in 0..1000 {
            m.insert(i, i * 2);
            assert!(m.len() <= 8);
        }
        // The eight most recent remain.
        for i in 992..1000 {
            assert_eq!(m.peek(&i), Some(&(i * 2)));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = LruMap::<u32, u32>::new(0);
    }

    #[test]
    fn keys_by_recency_orders_lru_first() {
        let mut m = LruMap::new(3);
        m.insert(1, "a");
        m.insert(2, "b");
        m.insert(3, "c");
        assert_eq!(m.keys_by_recency().copied().collect::<Vec<_>>(), [1, 2, 3]);
        // Touching 1 moves it to the MRU end; 2 becomes the victim.
        m.get_mut(&1);
        assert_eq!(m.keys_by_recency().copied().collect::<Vec<_>>(), [2, 3, 1]);
        let evicted = m.insert(4, "d");
        assert_eq!(evicted, Some((2, "b")));
        assert_eq!(m.keys_by_recency().copied().collect::<Vec<_>>(), [3, 1, 4]);
        // peek and keys_by_recency themselves must not touch.
        m.peek(&3);
        assert_eq!(m.keys_by_recency().next(), Some(&3));
    }

    #[test]
    fn interleaved_remove_insert_reuses_capacity() {
        let mut m = LruMap::new(4);
        for i in 0..4 {
            m.insert(i, i);
        }
        m.remove(&1);
        m.remove(&3);
        m.insert(10, 10);
        m.insert(11, 11);
        assert_eq!(m.len(), 4);
        assert_eq!(
            m.keys_by_recency().copied().collect::<Vec<_>>(),
            [0, 2, 10, 11]
        );
        // Eviction still picks the true LRU after removals.
        assert_eq!(m.insert(12, 12), Some((0, 0)));
    }
}
