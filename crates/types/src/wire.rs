//! Length-prefixed binary wire codec for the online serving layer.
//!
//! `pcap serve` streams trace events from many clients over TCP/UDS as
//! *frames*: a little-endian `u32` length prefix followed by that many
//! payload bytes. This module owns the layer-0 vocabulary every peer
//! shares — the framing bounds, a bounds-checked [`WireReader`] /
//! append-only writer pair for primitive fields, and the codec for the
//! [`TraceEvent`] records that make up the bulk of the traffic. The
//! frame *tags* (what a payload means) live with the server in
//! `pcap-serve`; this crate only defines how bytes become fields.
//!
//! Encoding rules, chosen for determinism and zero-copy decoding:
//!
//! * all integers little-endian, fixed width; no varints,
//! * `f64` as IEEE-754 bits (`to_bits`/`from_bits`) — byte-exact round
//!   trips, no text formatting involved,
//! * `Option<T>` as a `u8` flag (0 = `None`, 1 = `Some`) followed by
//!   the value iff present,
//! * enums as a `u8` discriminant; unknown discriminants are decode
//!   errors, never panics.

use crate::event::{IoEvent, IoKind, TraceEvent};
use crate::{Fd, FileId, Pc, Pid, SimTime};
use std::fmt;

/// Hard ceiling on a frame's payload length. A length prefix above
/// this is treated as stream corruption (the connection cannot be
/// resynchronized) rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 1 << 16;

/// Size of the `u32` length prefix, in bytes.
pub const LEN_PREFIX: usize = 4;

/// Decode-side errors. Encoding is infallible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the field being read.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// A frame length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// The claimed payload length.
        len: usize,
    },
    /// An enum discriminant no decoder recognizes.
    BadEnum {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending discriminant.
        value: u8,
    },
    /// A frame payload had bytes left over after its last field.
    Trailing {
        /// Number of undecoded bytes.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated field: needed {needed} bytes, have {have}")
            }
            WireError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes > {MAX_FRAME_LEN} max")
            }
            WireError::BadEnum { what, value } => {
                write!(f, "unknown {what} discriminant {value}")
            }
            WireError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after frame payload")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked cursor over a frame payload.
///
/// Every getter advances the cursor or fails with
/// [`WireError::Truncated`]; [`finish`](Self::finish) asserts the
/// payload was consumed exactly.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> WireReader<'a> {
        WireReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads an `Option` via the flag-byte convention.
    pub fn option<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            value => Err(WireError::BadEnum {
                what: "option flag",
                value,
            }),
        }
    }

    /// Asserts the payload is fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing {
                extra: self.remaining(),
            })
        }
    }
}

/// Append-only primitive writers, mirroring [`WireReader`] getters.
/// Free functions over `Vec<u8>` so callers can reuse one buffer.
pub mod put {
    /// Appends one byte.
    pub fn u8(buf: &mut Vec<u8>, v: u8) {
        buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bits.
    pub fn f64(buf: &mut Vec<u8>, v: f64) {
        u64(buf, v.to_bits());
    }

    /// Appends an `Option` via the flag-byte convention.
    pub fn option<T>(buf: &mut Vec<u8>, v: Option<T>, write: impl FnOnce(&mut Vec<u8>, T)) {
        match v {
            None => u8(buf, 0),
            Some(value) => {
                u8(buf, 1);
                write(buf, value);
            }
        }
    }
}

/// Appends `payload` to `buf` as one frame: `u32` length prefix plus
/// the payload bytes.
///
/// # Errors
///
/// [`WireError::Oversized`] if `payload` exceeds [`MAX_FRAME_LEN`].
/// The bound is enforced at encode time so an oversized payload can
/// never reach the wire: the old `payload.len() as u32` cast would
/// silently truncate lengths above `u32::MAX` and emit a frame the
/// peer decodes as garbage. On error `buf` is left untouched.
pub fn write_frame(buf: &mut Vec<u8>, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len: payload.len() });
    }
    put::u32(buf, payload.len() as u32);
    buf.extend_from_slice(payload);
    Ok(())
}

/// Attempts to split one frame off the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete
/// frame (read more bytes and retry), `Ok(Some((payload, consumed)))`
/// when it does — `consumed` counts the prefix plus the payload — and
/// [`WireError::Oversized`] when the length prefix exceeds
/// [`MAX_FRAME_LEN`] (the stream is corrupt; no resync is possible).
#[allow(clippy::type_complexity)]
pub fn read_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    if buf.len() < LEN_PREFIX {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..LEN_PREFIX].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len });
    }
    if buf.len() < LEN_PREFIX + len {
        return Ok(None);
    }
    Ok(Some((&buf[LEN_PREFIX..LEN_PREFIX + len], LEN_PREFIX + len)))
}

fn io_kind_code(kind: IoKind) -> u8 {
    match kind {
        IoKind::Read => 0,
        IoKind::Write => 1,
        IoKind::SyncWrite => 2,
        IoKind::Open => 3,
        IoKind::Close => 4,
    }
}

fn io_kind_from(code: u8) -> Result<IoKind, WireError> {
    Ok(match code {
        0 => IoKind::Read,
        1 => IoKind::Write,
        2 => IoKind::SyncWrite,
        3 => IoKind::Open,
        4 => IoKind::Close,
        value => {
            return Err(WireError::BadEnum {
                what: "IoKind",
                value,
            })
        }
    })
}

const EVENT_IO: u8 = 0;
const EVENT_FORK: u8 = 1;
const EVENT_EXIT: u8 = 2;

/// Appends one [`TraceEvent`] to `buf` (no framing; callers compose
/// events into larger payloads).
pub fn put_event(buf: &mut Vec<u8>, event: &TraceEvent) {
    match *event {
        TraceEvent::Io(ref io) => {
            put::u8(buf, EVENT_IO);
            put::u64(buf, io.time.as_micros());
            put::u32(buf, io.pid.0);
            put::u32(buf, io.pc.0);
            put::u8(buf, io_kind_code(io.kind));
            put::u32(buf, io.fd.0);
            put::u64(buf, io.file.0);
            put::u64(buf, io.offset);
            put::u64(buf, io.len);
        }
        TraceEvent::Fork {
            time,
            parent,
            child,
        } => {
            put::u8(buf, EVENT_FORK);
            put::u64(buf, time.as_micros());
            put::u32(buf, parent.0);
            put::u32(buf, child.0);
        }
        TraceEvent::Exit { time, pid } => {
            put::u8(buf, EVENT_EXIT);
            put::u64(buf, time.as_micros());
            put::u32(buf, pid.0);
        }
    }
}

/// Reads one [`TraceEvent`] from `r`, the inverse of [`put_event`].
///
/// # Errors
///
/// [`WireError::Truncated`] on short input, [`WireError::BadEnum`] on
/// an unknown event or I/O kind discriminant.
pub fn get_event(r: &mut WireReader<'_>) -> Result<TraceEvent, WireError> {
    match r.u8()? {
        EVENT_IO => Ok(TraceEvent::Io(IoEvent {
            time: SimTime::from_micros(r.u64()?),
            pid: Pid(r.u32()?),
            pc: Pc(r.u32()?),
            kind: io_kind_from(r.u8()?)?,
            fd: Fd(r.u32()?),
            file: FileId(r.u64()?),
            offset: r.u64()?,
            len: r.u64()?,
        })),
        EVENT_FORK => Ok(TraceEvent::Fork {
            time: SimTime::from_micros(r.u64()?),
            parent: Pid(r.u32()?),
            child: Pid(r.u32()?),
        }),
        EVENT_EXIT => Ok(TraceEvent::Exit {
            time: SimTime::from_micros(r.u64()?),
            pid: Pid(r.u32()?),
        }),
        value => Err(WireError::BadEnum {
            what: "TraceEvent",
            value,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io_event() -> TraceEvent {
        TraceEvent::Io(IoEvent {
            time: SimTime::from_micros(123_456),
            pid: Pid(7),
            pc: Pc(0xdead_beef),
            kind: IoKind::SyncWrite,
            fd: Fd(5),
            file: FileId(u64::MAX),
            offset: 1 << 40,
            len: 4096,
        })
    }

    #[test]
    fn events_round_trip() {
        let events = [
            io_event(),
            TraceEvent::Fork {
                time: SimTime::ZERO,
                parent: Pid(1),
                child: Pid(2),
            },
            TraceEvent::Exit {
                time: SimTime::from_secs(9),
                pid: Pid(2),
            },
        ];
        for event in events {
            let mut buf = Vec::new();
            put_event(&mut buf, &event);
            let mut r = WireReader::new(&buf);
            assert_eq!(get_event(&mut r).unwrap(), event);
            r.finish().unwrap();
        }
    }

    #[test]
    fn truncated_event_reports_needed_bytes() {
        let mut buf = Vec::new();
        put_event(&mut buf, &io_event());
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            assert!(
                matches!(get_event(&mut r), Err(WireError::Truncated { .. })),
                "cut at {cut} must be truncated"
            );
        }
    }

    #[test]
    fn unknown_discriminants_are_errors() {
        let mut r = WireReader::new(&[9]);
        assert_eq!(
            get_event(&mut r),
            Err(WireError::BadEnum {
                what: "TraceEvent",
                value: 9
            })
        );
        // Bad IoKind inside an otherwise valid Io event.
        let mut buf = Vec::new();
        put_event(&mut buf, &io_event());
        buf[1 + 8 + 4 + 4] = 200; // the kind byte
        let mut r = WireReader::new(&buf);
        assert_eq!(
            get_event(&mut r),
            Err(WireError::BadEnum {
                what: "IoKind",
                value: 200
            })
        );
    }

    #[test]
    fn frames_split_incrementally() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"").unwrap();
        // Partial prefix → incomplete.
        assert_eq!(read_frame(&buf[..3]).unwrap(), None);
        // Prefix but short payload → incomplete.
        assert_eq!(read_frame(&buf[..5]).unwrap(), None);
        let (payload, consumed) = read_frame(&buf).unwrap().unwrap();
        assert_eq!((payload, consumed), (&b"abc"[..], 7));
        let rest = &buf[consumed..];
        let (payload, consumed) = read_frame(rest).unwrap().unwrap();
        assert_eq!((payload, consumed), (&b""[..], 4));
        assert_eq!(consumed, rest.len());
    }

    #[test]
    fn oversized_prefix_is_corruption() {
        let mut buf = Vec::new();
        put::u32(&mut buf, (MAX_FRAME_LEN + 1) as u32);
        assert_eq!(
            read_frame(&buf),
            Err(WireError::Oversized {
                len: MAX_FRAME_LEN + 1
            })
        );
    }

    #[test]
    fn encode_enforces_max_frame_len_on_both_sides_of_the_boundary() {
        // Exactly MAX_FRAME_LEN is legal and round-trips.
        let payload = vec![0xabu8; MAX_FRAME_LEN];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let (decoded, consumed) = read_frame(&buf).unwrap().unwrap();
        assert_eq!(decoded, &payload[..]);
        assert_eq!(consumed, LEN_PREFIX + MAX_FRAME_LEN);
        // One byte over is an encode-time error that leaves the output
        // buffer untouched — nothing partial hits the wire.
        let oversized = vec![0u8; MAX_FRAME_LEN + 1];
        let mut buf = Vec::new();
        assert_eq!(
            write_frame(&mut buf, &oversized),
            Err(WireError::Oversized {
                len: MAX_FRAME_LEN + 1
            })
        );
        assert!(buf.is_empty(), "failed encode must not emit bytes");
    }

    #[test]
    fn options_and_floats_round_trip() {
        let mut buf = Vec::new();
        put::option(&mut buf, Some(42u64), put::u64);
        put::option::<u64>(&mut buf, None, put::u64);
        put::f64(&mut buf, -0.125);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.option(WireReader::u64).unwrap(), Some(42));
        assert_eq!(r.option(WireReader::u64).unwrap(), None);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.125f64).to_bits());
        r.finish().unwrap();
        // A flag byte that is neither 0 nor 1 is an error.
        let mut r = WireReader::new(&[7]);
        assert!(matches!(
            r.option(WireReader::u64),
            Err(WireError::BadEnum {
                what: "option flag",
                ..
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut buf = Vec::new();
        put::u32(&mut buf, 1);
        let mut r = WireReader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::Trailing { extra: 3 }));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(WireError::Oversized { len: 1 << 20 }
            .to_string()
            .contains("oversized"));
        assert!(WireError::Truncated { needed: 8, have: 3 }
            .to_string()
            .contains("needed 8"));
    }
}
