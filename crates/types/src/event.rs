//! The strace-like trace event model (§6 of the paper).
//!
//! The paper's modified `strace` records, for every I/O operation: the
//! triggering PC, access type, time, file descriptor, and file location,
//! plus `fork`/`exit` events of the processes within the traced
//! application. [`TraceEvent`] mirrors that record format;
//! [`DiskAccess`] is the post-file-cache physical access the power
//! manager actually sees.

use crate::{Fd, FileId, Pc, Pid, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of an I/O operation, as recorded by the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// `read(2)`-like data transfer from a file.
    Read,
    /// `write(2)`-like data transfer to a file (dirties cache pages).
    Write,
    /// A synchronously flushed write (`write` + `fsync`), as editors
    /// issue for explicit saves; reaches the disk immediately.
    SyncWrite,
    /// `open(2)`; reads file metadata (one page of directory/inode data).
    Open,
    /// `close(2)`; no disk traffic of its own.
    Close,
}

impl IoKind {
    /// True for operations that transfer file data (reads/writes), as
    /// opposed to pure descriptor management.
    pub fn transfers_data(self) -> bool {
        matches!(self, IoKind::Read | IoKind::Write | IoKind::SyncWrite)
    }
}

impl fmt::Display for IoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoKind::Read => "read",
            IoKind::Write => "write",
            IoKind::SyncWrite => "sync-write",
            IoKind::Open => "open",
            IoKind::Close => "close",
        };
        f.write_str(s)
    }
}

/// One traced I/O operation: everything the paper's modified `strace`
/// records about a library-level I/O call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoEvent {
    /// When the operation was issued.
    pub time: SimTime,
    /// Issuing process.
    pub pid: Pid,
    /// Application program counter that triggered the operation.
    pub pc: Pc,
    /// Operation type.
    pub kind: IoKind,
    /// File descriptor the operation targets.
    pub fd: Fd,
    /// Identity of the file (stands in for the on-disk location).
    pub file: FileId,
    /// Byte offset of the transfer within the file.
    pub offset: u64,
    /// Transfer length in bytes (0 for open/close).
    pub len: u64,
}

/// One record of an application trace: an I/O operation or a process
/// lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A traced I/O operation.
    Io(IoEvent),
    /// A `fork(2)`: `child` starts existing at `time`.
    Fork {
        /// When the fork happened.
        time: SimTime,
        /// Forking process.
        parent: Pid,
        /// Newly created process.
        child: Pid,
    },
    /// An `exit(2)`: `pid` stops existing at `time`.
    Exit {
        /// When the exit happened.
        time: SimTime,
        /// Exiting process.
        pid: Pid,
    },
}

impl TraceEvent {
    /// The timestamp of the event, whatever its variant.
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::Io(ref io) => io.time,
            TraceEvent::Fork { time, .. } => time,
            TraceEvent::Exit { time, .. } => time,
        }
    }

    /// The process the event belongs to (the child, for forks).
    pub fn pid(&self) -> Pid {
        match *self {
            TraceEvent::Io(ref io) => io.pid,
            TraceEvent::Fork { child, .. } => child,
            TraceEvent::Exit { pid, .. } => pid,
        }
    }

    /// Returns the contained I/O event, if any.
    pub fn as_io(&self) -> Option<&IoEvent> {
        match self {
            TraceEvent::Io(io) => Some(io),
            _ => None,
        }
    }
}

/// A physical disk access: a file-cache miss or a dirty-page write-back.
///
/// Only these reach the disk power manager; the file cache absorbs the
/// rest of the [`IoEvent`] stream (§6: "only cache misses are treated as
/// actual disk accesses").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskAccess {
    /// When the access reaches the disk.
    pub time: SimTime,
    /// Process held responsible for the access.
    ///
    /// Write-backs performed by the flush daemon are attributed to the
    /// process that dirtied the page.
    pub pid: Pid,
    /// Application PC that triggered the access ([`Pc(0)`](crate::Pc)
    /// i.e. [`DiskAccess::KERNEL_PC`] for flush-daemon write-backs).
    pub pc: Pc,
    /// File descriptor context for the PCAPf variant.
    pub fd: Fd,
    /// Whether data moves from (`Read`) or to (`Write`) the platters.
    pub kind: IoKind,
    /// Number of 4 KB pages transferred.
    pub pages: u32,
}

impl DiskAccess {
    /// Sentinel PC attributed to kernel-initiated accesses (dirty-data
    /// flushes), which have no application program counter.
    pub const KERNEL_PC: Pc = Pc(0);

    /// True if this access was initiated by the kernel flush daemon
    /// rather than directly by application code.
    pub fn is_kernel(&self) -> bool {
        self.pc == Self::KERNEL_PC
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fd, FileId, Pc, Pid};

    fn io(t: u64) -> IoEvent {
        IoEvent {
            time: SimTime::from_micros(t),
            pid: Pid(1),
            pc: Pc(0x42),
            kind: IoKind::Read,
            fd: Fd(3),
            file: FileId(7),
            offset: 0,
            len: 4096,
        }
    }

    #[test]
    fn event_accessors() {
        let e = TraceEvent::Io(io(10));
        assert_eq!(e.time(), SimTime::from_micros(10));
        assert_eq!(e.pid(), Pid(1));
        assert!(e.as_io().is_some());

        let f = TraceEvent::Fork {
            time: SimTime::from_micros(5),
            parent: Pid(1),
            child: Pid(2),
        };
        assert_eq!(f.pid(), Pid(2));
        assert!(f.as_io().is_none());

        let x = TraceEvent::Exit {
            time: SimTime::from_micros(20),
            pid: Pid(2),
        };
        assert_eq!(x.time(), SimTime::from_micros(20));
        assert_eq!(x.pid(), Pid(2));
    }

    #[test]
    fn iokind_data_transfer() {
        assert!(IoKind::Read.transfers_data());
        assert!(IoKind::Write.transfers_data());
        assert!(!IoKind::Open.transfers_data());
        assert!(!IoKind::Close.transfers_data());
        assert_eq!(IoKind::Open.to_string(), "open");
    }

    #[test]
    fn kernel_access_detection() {
        let a = DiskAccess {
            time: SimTime::ZERO,
            pid: Pid(1),
            pc: DiskAccess::KERNEL_PC,
            fd: Fd(0),
            kind: IoKind::Write,
            pages: 1,
        };
        assert!(a.is_kernel());
        let b = DiskAccess {
            pc: Pc(0x1000),
            ..a
        };
        assert!(!b.is_kernel());
    }

    #[test]
    fn serde_roundtrip() {
        let e = TraceEvent::Io(io(123));
        let s = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&s).unwrap();
        assert_eq!(e, back);
    }
}
