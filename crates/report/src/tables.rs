//! Plain-text and CSV rendering of experiment results.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rendered result table: a title, column headers, and string rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. "Figure 7: Global shutdown predictor").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {cell:>w$} |"));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (headers first, fields quoted when they
    /// contain separators).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fraction as a paper-style percentage ("86%").
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Formats a fraction as a one-decimal percentage ("85.6%").
pub fn pct1(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats joules with one decimal.
pub fn joules(j: pcap_disk::Joules) -> String {
    format!("{:.1} J", j.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["app", "value"]);
        t.row(vec!["mozilla".into(), "86%".into()]);
        t.row(vec!["nedit".into(), "100%".into()]);
        t
    }

    #[test]
    fn renders_aligned() {
        let r = sample().render();
        assert!(r.contains("## Demo"));
        assert!(r.contains("| mozilla |"));
        let lines: Vec<_> = r.lines().filter(|l| l.starts_with('|')).collect();
        let lens: Vec<_> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "aligned: {lens:?}");
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        Table::new("x", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.856), "86%");
        assert_eq!(pct1(0.856), "85.6%");
        assert_eq!(joules(pcap_disk::Joules(12.34)), "12.3 J");
    }
}
