//! Experiment harness regenerating every table and figure of the PCAP
//! paper's evaluation (§6) from the synthetic workload suite.
//!
//! # Example
//!
//! ```no_run
//! use pcap_report::{Experiment, Workbench};
//! use pcap_sim::SimConfig;
//!
//! let bench = Workbench::generate(42, SimConfig::paper())?;
//! for table in Experiment::Fig7.run(&bench) {
//!     println!("{table}");
//! }
//! # Ok::<(), pcap_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod chart;
pub mod experiments;
pub mod paper;
pub mod profiling;
pub mod snapshot;
pub mod sweep;
pub mod tables;
pub mod workbench;

pub use audit::{audit_app, audit_tables, explain_tables};
pub use chart::{figure_chart, Figure};
pub use experiments::Experiment;
pub use profiling::{profile_pipeline, ProfileSummary};
pub use snapshot::{
    snapshot_files, snapshot_files_observed, verify_snapshot, write_snapshot, Drift, GOLDEN_SEED,
};
pub use sweep::{
    fleet_table, run_sweep, run_sweep_journaled, run_sweep_observed, sweep_journal_config,
    sweep_table, sweep_table_from_reports, SWEEP_KINDS,
};
pub use tables::Table;
pub use workbench::{Workbench, GRID_KINDS};
