//! The `pcap profile` pipeline driver.
//!
//! Runs the full report pipeline — trace generation, stream
//! preparation, the `app × manager` warm-up grid, and snapshot
//! rendering — with a [`PipelineObserver`] attached, so one recorder
//! captures every stage span, per-worker telemetry sample and registry
//! counter the run produces. The pipeline itself is the same code the
//! un-profiled commands execute: every `*_observed` entry point is the
//! implementation its plain twin delegates to with [`NullPipeline`],
//! so profiling can never diverge from what it claims to measure.

use crate::snapshot::snapshot_files_observed;
use crate::workbench::{Workbench, GRID_KINDS};
use pcap_obs::{span, PipelineObserver};
use pcap_sim::SimConfig;
use pcap_trace::TraceError;

/// Runs per app in `--quick` mode: enough executions to exercise
/// cross-run training while keeping a CI smoke run under a second of
/// simulation. Matches `pcap bench --quick`.
pub const QUICK_RUNS: usize = 6;

/// What [`profile_pipeline`] did, for the CLI's closing summary line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSummary {
    /// Applications in the generated suite.
    pub apps: usize,
    /// Total executions simulated (post-truncation in quick mode).
    pub runs: usize,
    /// `app × manager` grid cells warmed up.
    pub cells: usize,
    /// Snapshot files rendered.
    pub files: usize,
}

/// Drives the full report pipeline under `pipeline`: generate all
/// [`PaperApp`](pcap_workload::PaperApp) traces (truncated to
/// [`QUICK_RUNS`] executions each when `quick`), prepare every stream
/// once, warm up the full `app ×` [`GRID_KINDS`] grid, then render the
/// complete golden snapshot in memory. Each phase runs inside a
/// `phase_*` span on the calling thread; the worker-side `generate:`,
/// `prepare:`/`build:`, `cell:`/`eval:` and `render:` spans land on
/// their own tracks inside those phases.
///
/// # Errors
///
/// Propagates trace-validation failures from the workload generator.
pub fn profile_pipeline<P: PipelineObserver>(
    seed: u64,
    jobs: usize,
    quick: bool,
    pipeline: &P,
) -> Result<ProfileSummary, TraceError> {
    let config = SimConfig::paper();
    let bench = {
        let _phase = span(pipeline, "phase_generate");
        let bench = Workbench::generate_par_observed(seed, config.clone(), jobs, pipeline)?;
        if quick {
            let traces = bench
                .traces()
                .iter()
                .map(|t| {
                    let mut t = t.clone();
                    t.runs.truncate(QUICK_RUNS);
                    t
                })
                .collect();
            Workbench::from_traces_seeded(seed, traces, config)
        } else {
            bench
        }
    };
    let apps = bench.traces().len();
    let runs = bench.traces().iter().map(|t| t.runs.len()).sum();
    {
        let _phase = span(pipeline, "phase_prepare");
        bench.prepare_all_observed(jobs, pipeline);
    }
    {
        let _phase = span(pipeline, "phase_warm_up");
        bench.warm_up_observed(&GRID_KINDS, jobs, pipeline);
    }
    let files = {
        let _phase = span(pipeline, "phase_render");
        snapshot_files_observed(&bench, pipeline).len()
    };
    Ok(ProfileSummary {
        apps,
        runs,
        cells: apps * GRID_KINDS.len(),
        files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_obs::{NullPipeline, TraceRecorder};

    #[test]
    fn quick_profile_covers_every_stage() {
        let recorder = TraceRecorder::new();
        let summary = profile_pipeline(42, 2, true, &recorder).expect("valid specs");
        assert_eq!(summary.apps, 6);
        assert_eq!(summary.runs, 6 * QUICK_RUNS);
        assert_eq!(summary.cells, 6 * GRID_KINDS.len());
        assert!(summary.files > summary.cells, "reports + tables + audit");

        let events = recorder.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        for phase in [
            "phase_generate",
            "phase_prepare",
            "phase_warm_up",
            "phase_render",
        ] {
            assert!(names.contains(&phase), "missing {phase} span");
        }
        for prefix in ["generate:", "prepare:", "cell:", "eval:", "render:"] {
            assert!(
                names.iter().any(|n| n.starts_with(prefix)),
                "no {prefix} span recorded"
            );
        }
        let counters = recorder.counters();
        assert_eq!(
            counters.get("prepared_runs").copied(),
            Some(summary.runs as u64)
        );
        assert_eq!(
            counters.get("files_rendered").copied(),
            Some(summary.files as u64)
        );
        // Every grid cell evaluates every prepared execution of its app.
        assert_eq!(
            counters.get("runs").copied(),
            Some((summary.runs * GRID_KINDS.len()) as u64)
        );
        assert!(!recorder.workers().is_empty(), "worker telemetry recorded");
    }

    #[test]
    fn profile_summary_matches_null_pipeline_run() {
        let recorder = TraceRecorder::new();
        let observed = profile_pipeline(42, 1, true, &recorder).expect("valid specs");
        let plain = profile_pipeline(42, 1, true, &NullPipeline).expect("valid specs");
        assert_eq!(observed, plain);
    }
}
