//! Golden-report regression snapshots.
//!
//! `pcap verify` serializes every [`AppReport`] of the full
//! `app × manager` grid and every experiment table at the pinned
//! [`GOLDEN_SEED`], then compares the result byte-for-byte against the
//! committed `golden/` directory. Any drift — a changed number, a
//! missing file, an extra file — is a regression (or an intentional
//! change that must be re-blessed with `pcap verify --update`).
//!
//! The zero-tolerance comparison is only possible because the whole
//! pipeline is deterministic: traces are pure functions of
//! `(app, seed)`, the simulator is a pure function of
//! `(trace, config, kind)`, floats are serialized via Rust's
//! shortest-roundtrip formatting, and map keys are sorted.

use crate::audit::{audit_app, audit_snapshot_csv, golden_jsonl};
use crate::experiments::Experiment;
use crate::workbench::{Workbench, GRID_KINDS};
use pcap_obs::{NullPipeline, PipelineObserver};
use pcap_sim::PowerManagerKind;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The seed the committed golden snapshot is generated with.
pub const GOLDEN_SEED: u64 = 42;

/// One divergence between the live snapshot and the golden directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drift {
    /// The golden directory lacks a file the current build produces.
    Missing(String),
    /// The golden directory has a file the current build no longer
    /// produces.
    Unexpected(String),
    /// A file exists in both but the contents differ.
    Changed {
        /// Relative path of the drifted file.
        file: String,
        /// First differing line (1-based).
        line: usize,
        /// That line in the golden file (empty if past its end).
        expected: String,
        /// That line as currently produced (empty if past the end).
        actual: String,
    },
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Drift::Missing(file) => write!(f, "{file}: missing from golden (new output file?)"),
            Drift::Unexpected(file) => write!(f, "{file}: golden file no longer produced"),
            Drift::Changed {
                file,
                line,
                expected,
                actual,
            } => write!(f, "{file}:{line}: golden {expected:?}, got {actual:?}"),
        }
    }
}

/// Renders the full snapshot for `bench` as `(relative path, contents)`
/// pairs in canonical order: per-app per-manager report JSON under
/// `reports/`, then per-experiment CSV under `tables/`.
pub fn snapshot_files(bench: &Workbench) -> Vec<(String, String)> {
    snapshot_files_observed(bench, &NullPipeline)
}

/// Renders one snapshot file inside a `render:{path}` span, counting
/// it on the `files_rendered` counter. Compiles down to the bare
/// closure call when the observer is disabled.
fn render_file<P, F>(pipeline: &P, path: String, body: F) -> (String, String)
where
    P: PipelineObserver,
    F: FnOnce() -> String,
{
    if P::ENABLED {
        let name = format!("render:{path}");
        pipeline.span_begin(&name);
        let contents = body();
        pipeline.span_end(&name);
        pipeline.counter_add("files_rendered", 1);
        return (path, contents);
    }
    (path, body())
}

/// [`snapshot_files`] with a [`PipelineObserver`] attached: every
/// rendered file gets a `render:{path}` span (report serialization,
/// experiment tables, audit logs), so `pcap profile` attributes report
/// time per artifact.
pub fn snapshot_files_observed<P: PipelineObserver>(
    bench: &Workbench,
    pipeline: &P,
) -> Vec<(String, String)> {
    let mut files = Vec::new();
    for (trace_idx, trace) in bench.traces().iter().enumerate() {
        for kind in GRID_KINDS {
            files.push(render_file(
                pipeline,
                format!("reports/{}.{}.json", slug(&trace.app), slug(&kind.label())),
                || {
                    let report = bench.report(trace_idx, kind);
                    let mut body =
                        serde_json::to_string_pretty(&report).expect("reports always serialize");
                    body.push('\n');
                    body
                },
            ));
        }
    }
    for experiment in Experiment::ALL {
        files.push(render_file(
            pipeline,
            format!("tables/{}.csv", experiment.name()),
            || {
                let tables = experiment.run(bench);
                let mut body = String::new();
                for (i, table) in tables.iter().enumerate() {
                    if i > 0 {
                        body.push('\n');
                    }
                    body.push_str(&format!("# {}\n", table.title));
                    body.push_str(&table.to_csv());
                }
                body
            },
        ));
    }
    // Decision-audit section: per-app audit CSV under the base PCAP
    // manager, plus the full (Short-filtered) decision log for nedit —
    // the one app small enough to keep line-by-line (DESIGN.md §8).
    for (trace_idx, trace) in bench.traces().iter().enumerate() {
        let outcome = audit_app(bench, trace_idx, PowerManagerKind::PCAP);
        files.push(render_file(
            pipeline,
            format!("audit/{}.csv", slug(&trace.app)),
            || audit_snapshot_csv(&outcome),
        ));
        if &*trace.app == "nedit" {
            files.push(render_file(
                pipeline,
                "audit/nedit.jsonl".to_owned(),
                || golden_jsonl(&outcome),
            ));
        }
    }
    files
}

/// Writes (or re-blesses) the golden snapshot, replacing the
/// `reports/`, `tables/` and `audit/` subdirectories wholesale so
/// deleted cells cannot linger.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_snapshot(bench: &Workbench, dir: &Path) -> io::Result<()> {
    for sub in ["reports", "tables", "audit"] {
        let sub = dir.join(sub);
        if sub.exists() {
            fs::remove_dir_all(&sub)?;
        }
        fs::create_dir_all(&sub)?;
    }
    for (rel, contents) in snapshot_files(bench) {
        // Atomic per-file commit (temp + rename): a crash mid-bless
        // leaves each golden file either old or new, never truncated.
        pcap_sim::atomic_write(dir.join(rel), contents.as_bytes())?;
    }
    Ok(())
}

/// Compares the live snapshot for `bench` against the golden directory,
/// byte-for-byte. Returns every drift found (empty = pass).
///
/// # Errors
///
/// Propagates filesystem failures other than "golden file absent"
/// (which is reported as [`Drift::Missing`]).
pub fn verify_snapshot(bench: &Workbench, dir: &Path) -> io::Result<Vec<Drift>> {
    let mut drifts = Vec::new();
    let expected = snapshot_files(bench);
    for (rel, actual) in &expected {
        match fs::read_to_string(dir.join(rel)) {
            Ok(golden) => {
                if golden != *actual {
                    drifts.push(first_divergence(rel, &golden, actual));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                drifts.push(Drift::Missing(rel.clone()));
            }
            Err(e) => return Err(e),
        }
    }
    // Stale golden files: on disk but no longer produced.
    for sub in ["reports", "tables", "audit"] {
        let sub_dir = dir.join(sub);
        if !sub_dir.is_dir() {
            continue;
        }
        let mut names: Vec<String> = fs::read_dir(&sub_dir)?
            .filter_map(Result::ok)
            .filter_map(|entry| entry.file_name().into_string().ok())
            .map(|name| format!("{sub}/{name}"))
            .collect();
        names.sort();
        for name in names {
            if !expected.iter().any(|(rel, _)| *rel == name) {
                drifts.push(Drift::Unexpected(name));
            }
        }
    }
    Ok(drifts)
}

fn first_divergence(rel: &str, golden: &str, actual: &str) -> Drift {
    let mut golden_lines = golden.lines();
    let mut actual_lines = actual.lines();
    let mut line = 0;
    loop {
        line += 1;
        match (golden_lines.next(), actual_lines.next()) {
            (Some(g), Some(a)) if g == a => continue,
            (g, a) => {
                return Drift::Changed {
                    file: rel.to_owned(),
                    line,
                    expected: g.unwrap_or_default().to_owned(),
                    actual: a.unwrap_or_default().to_owned(),
                }
            }
        }
    }
}

/// Lowercases a label and maps every non-alphanumeric run to a single
/// `-` so manager labels like "PCAP-fh+r" become stable file names.
fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_sim::SimConfig;
    use pcap_trace::{ApplicationTrace, TraceRunBuilder};
    use pcap_types::{Fd, FileId, IoKind, Pc, Pid, SimTime};

    fn tiny_bench() -> Workbench {
        let mut trace = ApplicationTrace::new("tiny");
        let mut b = TraceRunBuilder::new(Pid(1));
        b.io(
            SimTime::from_secs(1),
            Pid(1),
            Pc(0x10),
            IoKind::Read,
            Fd(3),
            FileId(1),
            0,
            4096,
        );
        b.exit(SimTime::from_secs(30), Pid(1));
        trace.runs.push(b.finish().unwrap());
        Workbench::from_traces_seeded(GOLDEN_SEED, vec![trace], SimConfig::paper())
    }

    #[test]
    fn slugs_are_filesystem_safe() {
        assert_eq!(slug("PCAP-fh+r"), "pcap-fh-r");
        assert_eq!(slug("TP"), "tp");
        assert_eq!(slug("PCAP+ms"), "pcap-ms");
    }

    #[test]
    fn snapshot_roundtrip_and_drift_detection() {
        let dir = std::env::temp_dir().join(format!("pcap-golden-{}", std::process::id()));
        let bench = tiny_bench();
        write_snapshot(&bench, &dir).expect("write");
        assert_eq!(verify_snapshot(&bench, &dir).expect("verify"), vec![]);

        // Corrupt one report: drift is localised to that file.
        let victim = dir.join("reports/tiny.tp.json");
        let original = fs::read_to_string(&victim).unwrap();
        fs::write(&victim, original.replace(':', " :")).unwrap();
        let drifts = verify_snapshot(&bench, &dir).expect("verify");
        assert_eq!(drifts.len(), 1);
        assert!(
            matches!(&drifts[0], Drift::Changed { file, .. } if file == "reports/tiny.tp.json")
        );

        // A stale file is flagged; a deleted one is missing.
        fs::write(&victim, original).unwrap();
        fs::write(dir.join("tables/ghost.csv"), "boo\n").unwrap();
        fs::remove_file(dir.join("tables/fig7.csv")).unwrap();
        let drifts = verify_snapshot(&bench, &dir).expect("verify");
        assert!(drifts.contains(&Drift::Missing("tables/fig7.csv".into())));
        assert!(drifts.contains(&Drift::Unexpected("tables/ghost.csv".into())));

        // Re-blessing wipes stale files and passes again.
        write_snapshot(&bench, &dir).expect("rewrite");
        assert_eq!(verify_snapshot(&bench, &dir).expect("verify"), vec![]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
