//! Multi-seed experiment sweeps.
//!
//! The paper's robustness claims (§6) are statements about behaviour
//! across user sessions; in this reproduction that means across
//! workload seeds. This module fans the full `seed × app × manager`
//! grid across a [`SweepRunner`] and aggregates per-seed savings and
//! accuracy into a mean/min/max table — the `sweep` experiment.
//!
//! Determinism contract: trace generation depends only on
//! `(app, seed)`, simulation only on `(trace, config, kind)`, and all
//! merges happen in canonical order (seed-major, then [`PaperApp::ALL`]
//! order, then kind order), so output is byte-identical for every
//! `--jobs` value.

use crate::tables::{pct1, Table};
use crate::workbench::Workbench;
use pcap_obs::{NullPipeline, PipelineObserver};
use pcap_sim::{evaluate_prepared_traced, PowerManagerKind, SeedStat, SimConfig, SweepRunner};
use pcap_trace::TraceError;
use pcap_workload::{AppModel, PaperApp};

/// The managers aggregated by the `sweep` experiment: the paper's
/// headline predictors plus the clairvoyant bound.
pub const SWEEP_KINDS: [PowerManagerKind; 4] = [
    PowerManagerKind::Timeout,
    PowerManagerKind::LT,
    PowerManagerKind::PCAP,
    PowerManagerKind::Oracle,
];

/// Generates one workbench per seed and simulates `kinds` for every
/// `(seed, app)` cell, batching the whole grid through one parallel
/// runner.
///
/// # Errors
///
/// Propagates trace-validation failures from the workload generator.
pub fn run_sweep(
    seeds: &[u64],
    config: &SimConfig,
    kinds: &[PowerManagerKind],
    jobs: usize,
) -> Result<Vec<(u64, Workbench)>, TraceError> {
    run_sweep_observed(seeds, config, kinds, jobs, &NullPipeline)
}

/// [`run_sweep`] with a [`pcap_obs::PipelineObserver`] attached: trace
/// generation runs on a `"generate"` runner scope
/// (`generate:{app}@{seed}` spans), each per-seed grid on a `"sweep"`
/// scope (`cell:{app}×{manager}@{seed}` spans, with the engine's
/// nested `eval` span inside), and memo insertions feed the
/// `memo_prime` counter.
///
/// # Errors
///
/// Propagates trace-validation failures from the workload generator.
pub fn run_sweep_observed<P: PipelineObserver>(
    seeds: &[u64],
    config: &SimConfig,
    kinds: &[PowerManagerKind],
    jobs: usize,
    pipeline: &P,
) -> Result<Vec<(u64, Workbench)>, TraceError> {
    let runner = SweepRunner::new(jobs);
    let apps = PaperApp::ALL;

    // Stage 1: every (seed, app) trace, seed-major so per-seed chunks
    // come back contiguous.
    let generation_tasks: Vec<(u64, PaperApp)> = seeds
        .iter()
        .flat_map(|&seed| apps.iter().map(move |&app| (seed, app)))
        .collect();
    let traces = runner
        .run_observed(
            "generate",
            &generation_tasks,
            |_, &(seed, app)| app.spec().generate_trace(seed),
            |_, &(seed, app)| format!("generate:{}@{seed}", app.name()),
            pipeline,
        )
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    let mut traces = traces.into_iter();
    let benches: Vec<(u64, Workbench)> = seeds
        .iter()
        .map(|&seed| {
            let suite: Vec<_> = (0..apps.len())
                .map(|_| traces.next().expect("chunk"))
                .collect();
            (
                seed,
                Workbench::from_traces_seeded(seed, suite, config.clone()),
            )
        })
        .collect();

    // Stage 2: per-seed batches. Each app's streams (cache filtering,
    // gap extraction) are prepared exactly once per seed — into the
    // workbench's shared `PreparedTrace` slots, so downstream
    // experiments (Table 1 profiles, on-demand cells, predictor-only
    // ablations) reuse them instead of re-preparing — then the whole
    // kind grid simulates against those shared preparations.
    for (seed, bench) in &benches {
        bench.prepare_all_observed(jobs, pipeline);
        let simulation_tasks: Vec<(usize, PowerManagerKind)> = (0..apps.len())
            .flat_map(|trace_idx| kinds.iter().map(move |&kind| (trace_idx, kind)))
            .collect();
        let reports = runner.run_observed(
            "sweep",
            &simulation_tasks,
            |_, &(trace_idx, kind)| {
                evaluate_prepared_traced(bench.prepared(trace_idx), config, kind, pipeline)
            },
            |_, &(trace_idx, kind)| {
                format!(
                    "cell:{}×{}@{seed}",
                    bench.traces()[trace_idx].app,
                    kind.label()
                )
            },
            pipeline,
        );
        for (&(trace_idx, kind), report) in simulation_tasks.iter().zip(reports) {
            bench.prime_observed(trace_idx, kind, report, pipeline);
        }
    }
    Ok(benches)
}

/// Aggregates a sweep into the mean/min/max table: one row per
/// `app × manager`, plus per-manager suite averages.
pub fn sweep_table(benches: &[(u64, Workbench)], kinds: &[PowerManagerKind]) -> Table {
    let seeds: Vec<u64> = benches.iter().map(|(seed, _)| *seed).collect();
    let apps = benches.first().map_or(0, |(_, bench)| bench.traces().len());
    let mut t = Table::new(
        format!(
            "Sweep: savings and accuracy across {} seeds ({})",
            seeds.len(),
            render_seeds(&seeds)
        ),
        &[
            "app",
            "predictor",
            "savings mean",
            "savings min",
            "savings max",
            "coverage mean",
            "coverage min",
            "coverage max",
            "miss mean",
            "miss max",
        ],
    );
    let stat_row = |t: &mut Table, app: &str, kind: PowerManagerKind, cells: &[(usize, usize)]| {
        // `cells` are (bench index, trace index) pairs to average over.
        let collect = |metric: &dyn Fn(&pcap_sim::AppReport) -> f64| -> SeedStat {
            let samples: Vec<f64> = cells
                .iter()
                .map(|&(bench_idx, trace_idx)| {
                    metric(&benches[bench_idx].1.report(trace_idx, kind))
                })
                .collect();
            SeedStat::of(&samples)
        };
        let savings = collect(&|r| r.savings());
        let coverage = collect(&|r| r.global.coverage());
        let miss = collect(&|r| r.global.miss_rate());
        t.row(vec![
            app.to_owned(),
            kind.label(),
            pct1(savings.mean),
            pct1(savings.min),
            pct1(savings.max),
            pct1(coverage.mean),
            pct1(coverage.min),
            pct1(coverage.max),
            pct1(miss.mean),
            pct1(miss.max),
        ]);
    };
    for trace_idx in 0..apps {
        let app = benches[0].1.traces()[trace_idx].app.clone();
        for &kind in kinds {
            let cells: Vec<(usize, usize)> = (0..benches.len())
                .map(|bench_idx| (bench_idx, trace_idx))
                .collect();
            stat_row(&mut t, &app, kind, &cells);
        }
    }
    // Suite-wide aggregation: every app × seed sample per manager.
    for &kind in kinds {
        let cells: Vec<(usize, usize)> = (0..benches.len())
            .flat_map(|bench_idx| (0..apps).map(move |trace_idx| (bench_idx, trace_idx)))
            .collect();
        stat_row(&mut t, "AVERAGE", kind, &cells);
    }
    t
}

/// Renders a streaming fleet sweep as the fleet table: one row per
/// paper app (aggregated over every device running it) plus the
/// whole-fleet TOTAL row. Pure function of the [`FleetReport`], so the
/// table inherits the report's `--jobs`-independence.
pub fn fleet_table(report: &pcap_sim::FleetReport) -> Table {
    let mut t = Table::new(
        format!(
            "Fleet: {} devices, seed {}, {} ({})",
            report.devices,
            report.base_seed,
            report.manager,
            match report.max_runs {
                Some(cap) => format!("runs capped at {cap}"),
                None => "full traces".to_owned(),
            }
        ),
        &[
            "app",
            "devices",
            "runs",
            "accesses",
            "savings",
            "coverage",
            "miss rate",
        ],
    );
    let slot_row = |t: &mut Table, name: &str, slot: &pcap_sim::FleetSlot| {
        t.row(vec![
            name.to_owned(),
            slot.devices.to_string(),
            slot.runs.to_string(),
            slot.accesses.to_string(),
            pct1(slot.savings()),
            pct1(slot.coverage()),
            pct1(slot.global.miss_rate()),
        ]);
    };
    for (app, slot) in report.rows() {
        slot_row(&mut t, app, slot);
    }
    slot_row(&mut t, "TOTAL", &report.total);
    t
}

/// Renders a seed list compactly: contiguous runs as `a..=b`.
fn render_seeds(seeds: &[u64]) -> String {
    let contiguous = seeds
        .windows(2)
        .all(|pair| pair[1] == pair[0].wrapping_add(1));
    match (seeds.first(), seeds.last()) {
        (Some(first), Some(last)) if contiguous && seeds.len() > 1 => {
            format!("seeds {first}..={last}")
        }
        _ => format!(
            "seeds {}",
            seeds
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truncated_sweep(seeds: &[u64], jobs: usize) -> Vec<(u64, Workbench)> {
        // Full multi-seed sweeps are exercised by the CLI; tests use a
        // reduced suite for speed by truncating each generated trace.
        let benches = run_sweep(seeds, &SimConfig::paper(), &[], jobs).expect("valid specs");
        let benches: Vec<(u64, Workbench)> = benches
            .into_iter()
            .map(|(seed, bench)| {
                let traces: Vec<_> = bench
                    .traces()
                    .iter()
                    .map(|t| {
                        let mut t = t.clone();
                        t.runs.truncate(3);
                        t
                    })
                    .collect();
                (
                    seed,
                    Workbench::from_traces_seeded(seed, traces, SimConfig::paper()),
                )
            })
            .collect();
        for (_, bench) in &benches {
            bench.warm_up(&SWEEP_KINDS, jobs);
        }
        benches
    }

    #[test]
    fn sweep_table_is_job_count_invariant() {
        let seeds = [42u64, 43];
        let serial = sweep_table(&truncated_sweep(&seeds, 1), &SWEEP_KINDS);
        let parallel = sweep_table(&truncated_sweep(&seeds, 8), &SWEEP_KINDS);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        // 6 apps × 4 kinds + 4 AVERAGE rows.
        assert_eq!(serial.rows.len(), 6 * 4 + 4);
    }

    #[test]
    fn seed_ranges_render_compactly() {
        assert_eq!(render_seeds(&[42, 43, 44]), "seeds 42..=44");
        assert_eq!(render_seeds(&[42]), "seeds 42");
        assert_eq!(render_seeds(&[7, 42]), "seeds 7, 42");
    }
}
