//! Multi-seed experiment sweeps.
//!
//! The paper's robustness claims (§6) are statements about behaviour
//! across user sessions; in this reproduction that means across
//! workload seeds. This module fans the full `seed × app × manager`
//! grid across a [`SweepRunner`] and aggregates per-seed savings and
//! accuracy into a mean/min/max table — the `sweep` experiment.
//!
//! Determinism contract: trace generation depends only on
//! `(app, seed)`, simulation only on `(trace, config, kind)`, and all
//! merges happen in canonical order (seed-major, then [`PaperApp::ALL`]
//! order, then kind order), so output is byte-identical for every
//! `--jobs` value.

use crate::tables::{pct1, Table};
use crate::workbench::Workbench;
use pcap_obs::{NullPipeline, PipelineObserver};
use pcap_sim::{
    decode_reports, encode_reports, evaluate_prepared, evaluate_prepared_traced, run_journaled,
    AppReport, Journal, JournalError, PowerManagerKind, PreparedTrace, SeedStat, SimConfig,
    SweepRunner,
};
use pcap_trace::TraceError;
use pcap_workload::{AppModel, ConfigHash, PaperApp};

/// The managers aggregated by the `sweep` experiment: the paper's
/// headline predictors plus the clairvoyant bound.
pub const SWEEP_KINDS: [PowerManagerKind; 4] = [
    PowerManagerKind::Timeout,
    PowerManagerKind::LT,
    PowerManagerKind::PCAP,
    PowerManagerKind::Oracle,
];

/// Generates one workbench per seed and simulates `kinds` for every
/// `(seed, app)` cell, batching the whole grid through one parallel
/// runner.
///
/// # Errors
///
/// Propagates trace-validation failures from the workload generator.
pub fn run_sweep(
    seeds: &[u64],
    config: &SimConfig,
    kinds: &[PowerManagerKind],
    jobs: usize,
) -> Result<Vec<(u64, Workbench)>, TraceError> {
    run_sweep_observed(seeds, config, kinds, jobs, &NullPipeline)
}

/// [`run_sweep`] with a [`pcap_obs::PipelineObserver`] attached: trace
/// generation runs on a `"generate"` runner scope
/// (`generate:{app}@{seed}` spans), each per-seed grid on a `"sweep"`
/// scope (`cell:{app}×{manager}@{seed}` spans, with the engine's
/// nested `eval` span inside), and memo insertions feed the
/// `memo_prime` counter.
///
/// # Errors
///
/// Propagates trace-validation failures from the workload generator.
pub fn run_sweep_observed<P: PipelineObserver>(
    seeds: &[u64],
    config: &SimConfig,
    kinds: &[PowerManagerKind],
    jobs: usize,
    pipeline: &P,
) -> Result<Vec<(u64, Workbench)>, TraceError> {
    let runner = SweepRunner::new(jobs);
    let apps = PaperApp::ALL;

    // Stage 1: every (seed, app) trace, seed-major so per-seed chunks
    // come back contiguous.
    let generation_tasks: Vec<(u64, PaperApp)> = seeds
        .iter()
        .flat_map(|&seed| apps.iter().map(move |&app| (seed, app)))
        .collect();
    let traces = runner
        .run_observed(
            "generate",
            &generation_tasks,
            |_, &(seed, app)| app.spec().generate_trace(seed),
            |_, &(seed, app)| format!("generate:{}@{seed}", app.name()),
            pipeline,
        )
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    let mut traces = traces.into_iter();
    let benches: Vec<(u64, Workbench)> = seeds
        .iter()
        .map(|&seed| {
            let suite: Vec<_> = (0..apps.len())
                .map(|_| traces.next().expect("chunk"))
                .collect();
            (
                seed,
                Workbench::from_traces_seeded(seed, suite, config.clone()),
            )
        })
        .collect();

    // Stage 2: per-seed batches. Each app's streams (cache filtering,
    // gap extraction) are prepared exactly once per seed — into the
    // workbench's shared `PreparedTrace` slots, so downstream
    // experiments (Table 1 profiles, on-demand cells, predictor-only
    // ablations) reuse them instead of re-preparing — then the whole
    // kind grid simulates against those shared preparations.
    for (seed, bench) in &benches {
        bench.prepare_all_observed(jobs, pipeline);
        let simulation_tasks: Vec<(usize, PowerManagerKind)> = (0..apps.len())
            .flat_map(|trace_idx| kinds.iter().map(move |&kind| (trace_idx, kind)))
            .collect();
        let reports = runner.run_observed(
            "sweep",
            &simulation_tasks,
            |_, &(trace_idx, kind)| {
                evaluate_prepared_traced(bench.prepared(trace_idx), config, kind, pipeline)
            },
            |_, &(trace_idx, kind)| {
                format!(
                    "cell:{}×{}@{seed}",
                    bench.traces()[trace_idx].app,
                    kind.label()
                )
            },
            pipeline,
        );
        for (&(trace_idx, kind), report) in simulation_tasks.iter().zip(reports) {
            bench.prime_observed(trace_idx, kind, report, pipeline);
        }
    }
    Ok(benches)
}

/// The config hash a seed-sweep journal is pinned to: the exact seed
/// list, the full [`SimConfig`] (via its canonical JSON serialization),
/// and the manager grid. Any change to any of them re-keys the journal,
/// so stale results can never leak into a different sweep.
pub fn sweep_journal_config(seeds: &[u64], config: &SimConfig, kinds: &[PowerManagerKind]) -> u64 {
    let mut hash = ConfigHash::new("seed-sweep");
    hash.push(seeds.len() as u64);
    for &seed in seeds {
        hash.push(seed);
    }
    hash.push_str(&serde_json::to_string(config).expect("SimConfig serializes"));
    hash.push(kinds.len() as u64);
    for kind in kinds {
        hash.push_str(&serde_json::to_string(kind).expect("PowerManagerKind serializes"));
    }
    hash.finish()
}

/// [`run_sweep`] against a journal: one cell per seed (the cell key is
/// the seed itself), each holding the full `app × kind` report grid.
/// Seeds already committed are decoded instead of recomputed; pending
/// seeds are claimed via the journal's advisory locks so concurrent or
/// restarted processes cooperate. Returns per-seed reports in app-major
/// × kind order, ready for [`sweep_table_from_reports`] — always read
/// back from journal bytes, so the readout is identical no matter
/// which process computed which seed.
///
/// # Errors
///
/// [`JournalError`] on journal I/O or integrity failures, with
/// [`JournalError::Task`] wrapping trace-generation errors.
pub fn run_sweep_journaled(
    seeds: &[u64],
    config: &SimConfig,
    kinds: &[PowerManagerKind],
    jobs: usize,
    journal: &mut Journal,
) -> Result<Vec<(u64, Vec<AppReport>)>, JournalError> {
    let runner = SweepRunner::new(jobs);
    let cells: Vec<(u64, u64)> = seeds.iter().map(|&seed| (seed, seed)).collect();
    let results = run_journaled(journal, &runner, &cells, |&seed| {
        let mut reports = Vec::with_capacity(PaperApp::ALL.len() * kinds.len());
        for app in PaperApp::ALL {
            let trace = app.spec().generate_trace(seed).map_err(|e| e.to_string())?;
            let prepared = PreparedTrace::build(&trace, config);
            for &kind in kinds {
                reports.push(evaluate_prepared(&prepared, config, kind));
            }
        }
        Ok(encode_reports(&reports))
    })?;
    seeds
        .iter()
        .zip(results)
        .map(|(&seed, bytes)| {
            let reports = decode_reports(&bytes).map_err(|e| JournalError::Corrupt {
                offset: 0,
                reason: format!("seed {seed} payload: {e}"),
            })?;
            Ok((seed, reports))
        })
        .collect()
}

/// Aggregates a sweep into the mean/min/max table: one row per
/// `app × manager`, plus per-manager suite averages.
pub fn sweep_table(benches: &[(u64, Workbench)], kinds: &[PowerManagerKind]) -> Table {
    let seeds: Vec<u64> = benches.iter().map(|(seed, _)| *seed).collect();
    let apps = benches.first().map_or(0, |(_, bench)| bench.traces().len());
    let per_seed: Vec<Vec<AppReport>> = benches
        .iter()
        .map(|(_, bench)| {
            (0..apps)
                .flat_map(|trace_idx| kinds.iter().map(move |&kind| bench.report(trace_idx, kind)))
                .collect()
        })
        .collect();
    sweep_table_from_reports(&seeds, &per_seed, kinds)
}

/// [`sweep_table`] over bare report grids (one `Vec<AppReport>` per
/// seed, app-major × kind order, as produced by
/// [`run_sweep_journaled`]). [`sweep_table`] delegates here, so the
/// journaled and workbench paths render through one implementation and
/// are byte-identical by construction.
pub fn sweep_table_from_reports(
    seeds: &[u64],
    per_seed: &[Vec<AppReport>],
    kinds: &[PowerManagerKind],
) -> Table {
    let apps = if kinds.is_empty() {
        0
    } else {
        per_seed.first().map_or(0, |grid| grid.len() / kinds.len())
    };
    let mut t = Table::new(
        format!(
            "Sweep: savings and accuracy across {} seeds ({})",
            seeds.len(),
            render_seeds(seeds)
        ),
        &[
            "app",
            "predictor",
            "savings mean",
            "savings min",
            "savings max",
            "coverage mean",
            "coverage min",
            "coverage max",
            "miss mean",
            "miss max",
        ],
    );
    let report_of = |bench_idx: usize, trace_idx: usize, kind_idx: usize| -> &AppReport {
        &per_seed[bench_idx][trace_idx * kinds.len() + kind_idx]
    };
    let stat_row = |t: &mut Table, app: &str, kind_idx: usize, cells: &[(usize, usize)]| {
        let kind = kinds[kind_idx];
        // `cells` are (seed index, trace index) pairs to average over.
        let collect = |metric: &dyn Fn(&AppReport) -> f64| -> SeedStat {
            let samples: Vec<f64> = cells
                .iter()
                .map(|&(bench_idx, trace_idx)| metric(report_of(bench_idx, trace_idx, kind_idx)))
                .collect();
            SeedStat::of(&samples)
        };
        let savings = collect(&|r| r.savings());
        let coverage = collect(&|r| r.global.coverage());
        let miss = collect(&|r| r.global.miss_rate());
        t.row(vec![
            app.to_owned(),
            kind.label(),
            pct1(savings.mean),
            pct1(savings.min),
            pct1(savings.max),
            pct1(coverage.mean),
            pct1(coverage.min),
            pct1(coverage.max),
            pct1(miss.mean),
            pct1(miss.max),
        ]);
    };
    for trace_idx in 0..apps {
        let app = report_of(0, trace_idx, 0).app.clone();
        for kind_idx in 0..kinds.len() {
            let cells: Vec<(usize, usize)> = (0..per_seed.len())
                .map(|bench_idx| (bench_idx, trace_idx))
                .collect();
            stat_row(&mut t, &app, kind_idx, &cells);
        }
    }
    // Suite-wide aggregation: every app × seed sample per manager.
    for kind_idx in 0..kinds.len() {
        let cells: Vec<(usize, usize)> = (0..per_seed.len())
            .flat_map(|bench_idx| (0..apps).map(move |trace_idx| (bench_idx, trace_idx)))
            .collect();
        stat_row(&mut t, "AVERAGE", kind_idx, &cells);
    }
    t
}

/// Renders a streaming fleet sweep as the fleet table: one row per
/// paper app (aggregated over every device running it) plus the
/// whole-fleet TOTAL row. Pure function of the [`FleetReport`], so the
/// table inherits the report's `--jobs`-independence.
pub fn fleet_table(report: &pcap_sim::FleetReport) -> Table {
    let mut t = Table::new(
        format!(
            "Fleet: {} devices, seed {}, {} ({})",
            report.devices,
            report.base_seed,
            report.manager,
            match report.max_runs {
                Some(cap) => format!("runs capped at {cap}"),
                None => "full traces".to_owned(),
            }
        ),
        &[
            "app",
            "devices",
            "runs",
            "accesses",
            "savings",
            "coverage",
            "miss rate",
        ],
    );
    let slot_row = |t: &mut Table, name: &str, slot: &pcap_sim::FleetSlot| {
        t.row(vec![
            name.to_owned(),
            slot.devices.to_string(),
            slot.runs.to_string(),
            slot.accesses.to_string(),
            pct1(slot.savings()),
            pct1(slot.coverage()),
            pct1(slot.global.miss_rate()),
        ]);
    };
    for (app, slot) in report.rows() {
        slot_row(&mut t, app, slot);
    }
    slot_row(&mut t, "TOTAL", &report.total);
    t
}

/// Renders a seed list compactly: contiguous runs as `a..=b`.
fn render_seeds(seeds: &[u64]) -> String {
    let contiguous = seeds
        .windows(2)
        .all(|pair| pair[1] == pair[0].wrapping_add(1));
    match (seeds.first(), seeds.last()) {
        (Some(first), Some(last)) if contiguous && seeds.len() > 1 => {
            format!("seeds {first}..={last}")
        }
        _ => format!(
            "seeds {}",
            seeds
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truncated_sweep(seeds: &[u64], jobs: usize) -> Vec<(u64, Workbench)> {
        // Full multi-seed sweeps are exercised by the CLI; tests use a
        // reduced suite for speed by truncating each generated trace.
        let benches = run_sweep(seeds, &SimConfig::paper(), &[], jobs).expect("valid specs");
        let benches: Vec<(u64, Workbench)> = benches
            .into_iter()
            .map(|(seed, bench)| {
                let traces: Vec<_> = bench
                    .traces()
                    .iter()
                    .map(|t| {
                        let mut t = t.clone();
                        t.runs.truncate(3);
                        t
                    })
                    .collect();
                (
                    seed,
                    Workbench::from_traces_seeded(seed, traces, SimConfig::paper()),
                )
            })
            .collect();
        for (_, bench) in &benches {
            bench.warm_up(&SWEEP_KINDS, jobs);
        }
        benches
    }

    #[test]
    fn sweep_table_is_job_count_invariant() {
        let seeds = [42u64, 43];
        let serial = sweep_table(&truncated_sweep(&seeds, 1), &SWEEP_KINDS);
        let parallel = sweep_table(&truncated_sweep(&seeds, 8), &SWEEP_KINDS);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        // 6 apps × 4 kinds + 4 AVERAGE rows.
        assert_eq!(serial.rows.len(), 6 * 4 + 4);
    }

    #[test]
    fn sweep_table_from_reports_matches_workbench_path() {
        let seeds = [42u64, 43];
        let benches = truncated_sweep(&seeds, 2);
        let via_bench = sweep_table(&benches, &SWEEP_KINDS);
        // The same grid, flattened to bare reports (the journal layout:
        // app-major × kind), must render the identical table.
        let per_seed: Vec<Vec<_>> = benches
            .iter()
            .map(|(_, bench)| {
                (0..bench.traces().len())
                    .flat_map(|ti| SWEEP_KINDS.iter().map(move |&k| bench.report(ti, k)))
                    .collect()
            })
            .collect();
        let via_reports = sweep_table_from_reports(&seeds, &per_seed, &SWEEP_KINDS);
        assert_eq!(via_bench.to_csv(), via_reports.to_csv());
    }

    #[test]
    fn sweep_journal_config_pins_every_dimension() {
        let config = SimConfig::paper();
        let base = sweep_journal_config(&[42, 43], &config, &SWEEP_KINDS);
        assert_eq!(base, sweep_journal_config(&[42, 43], &config, &SWEEP_KINDS));
        assert_ne!(base, sweep_journal_config(&[42], &config, &SWEEP_KINDS));
        assert_ne!(base, sweep_journal_config(&[43, 42], &config, &SWEEP_KINDS));
        let mut other = config.clone();
        other.pcap_history_len += 1;
        assert_ne!(base, sweep_journal_config(&[42, 43], &other, &SWEEP_KINDS));
        assert_ne!(
            base,
            sweep_journal_config(&[42, 43], &config, &SWEEP_KINDS[..3])
        );
    }

    #[test]
    fn seed_ranges_render_compactly() {
        assert_eq!(render_seeds(&[42, 43, 44]), "seeds 42..=44");
        assert_eq!(render_seeds(&[42]), "seeds 42");
        assert_eq!(render_seeds(&[7, 42]), "seeds 7, 42");
    }
}
