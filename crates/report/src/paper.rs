//! Reference values reported by the paper, for side-by-side columns in
//! the regenerated tables (we reproduce *shape*, not absolute numbers —
//! see `EXPERIMENTS.md`).

/// One application row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Application name.
    pub app: &'static str,
    /// Number of executions.
    pub executions: usize,
    /// Global idle periods.
    pub global_idle: usize,
    /// Local idle periods.
    pub local_idle: usize,
    /// Total I/Os.
    pub total_ios: usize,
}

/// The paper's Table 1.
pub const TABLE1: [Table1Row; 6] = [
    Table1Row {
        app: "mozilla",
        executions: 49,
        global_idle: 365,
        local_idle: 1001,
        total_ios: 90_843,
    },
    Table1Row {
        app: "writer",
        executions: 33,
        global_idle: 112,
        local_idle: 358,
        total_ios: 133_016,
    },
    Table1Row {
        app: "impress",
        executions: 19,
        global_idle: 87,
        local_idle: 234,
        total_ios: 220_455,
    },
    Table1Row {
        app: "xemacs",
        executions: 37,
        global_idle: 94,
        local_idle: 103,
        total_ios: 79_720,
    },
    Table1Row {
        app: "nedit",
        executions: 29,
        global_idle: 29,
        local_idle: 29,
        total_ios: 6_663,
    },
    Table1Row {
        app: "mplayer",
        executions: 31,
        global_idle: 51,
        local_idle: 111,
        total_ios: 512_433,
    },
];

/// One application row of the paper's Table 3 (prediction-table
/// entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3Row {
    /// Application name.
    pub app: &'static str,
    /// PCAP entries.
    pub pcap: usize,
    /// PCAPh entries.
    pub pcap_h: usize,
    /// PCAPf entries.
    pub pcap_f: usize,
    /// PCAPfh entries.
    pub pcap_fh: usize,
}

/// The paper's Table 3.
pub const TABLE3: [Table3Row; 6] = [
    Table3Row {
        app: "mozilla",
        pcap: 72,
        pcap_h: 99,
        pcap_f: 129,
        pcap_fh: 139,
    },
    Table3Row {
        app: "writer",
        pcap: 30,
        pcap_h: 36,
        pcap_f: 30,
        pcap_fh: 36,
    },
    Table3Row {
        app: "impress",
        pcap: 34,
        pcap_h: 44,
        pcap_f: 44,
        pcap_fh: 47,
    },
    Table3Row {
        app: "xemacs",
        pcap: 13,
        pcap_h: 16,
        pcap_f: 13,
        pcap_fh: 16,
    },
    Table3Row {
        app: "nedit",
        pcap: 6,
        pcap_h: 6,
        pcap_f: 6,
        pcap_fh: 6,
    },
    Table3Row {
        app: "mplayer",
        pcap: 24,
        pcap_h: 24,
        pcap_f: 26,
        pcap_fh: 26,
    },
];

/// Average metrics the paper states in its text (§6.1–§6.4), as
/// fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperAverages {
    /// Local coverage: TP, LT, PCAP (§6.1).
    pub local_coverage: [f64; 3],
    /// Local miss rates: TP, LT, PCAP (§6.1).
    pub local_miss: [f64; 3],
    /// Global coverage: TP, LT, PCAP (§6.2).
    pub global_coverage: [f64; 3],
    /// Global miss rates: TP, LT, PCAP (§6.2).
    pub global_miss: [f64; 3],
    /// Energy savings: Ideal, TP, LT, PCAP (§6.3).
    pub savings: [f64; 4],
    /// PCAPh global coverage / miss (§6.4.1).
    pub pcaph: (f64, f64),
    /// PCAPfh global coverage / miss (§6.4.1).
    pub pcapfh: (f64, f64),
}

/// The paper's stated averages.
pub const AVERAGES: PaperAverages = PaperAverages {
    local_coverage: [0.52, 0.88, 0.89],
    local_miss: [0.03, 0.10, 0.05],
    global_coverage: [0.71, 0.84, 0.86],
    global_miss: [0.08, 0.20, 0.10],
    savings: [0.78, 0.72, 0.75, 0.76],
    pcaph: (0.85, 0.05),
    pcapfh: (0.84, 0.05),
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals() {
        let total: usize = TABLE1.iter().map(|r| r.total_ios).sum();
        assert_eq!(total, 1_043_130);
        assert!(TABLE1.iter().all(|r| r.local_idle >= r.global_idle));
    }

    #[test]
    fn table3_monotone_in_context() {
        for r in TABLE3 {
            assert!(r.pcap_h >= r.pcap, "{}", r.app);
            assert!(r.pcap_fh >= r.pcap_h.min(r.pcap_f), "{}", r.app);
        }
    }

    #[test]
    fn averages_shape() {
        let a = AVERAGES;
        // PCAP dominates LT dominates TP on coverage.
        assert!(a.global_coverage[2] > a.global_coverage[1]);
        assert!(a.global_coverage[1] > a.global_coverage[0]);
        // LT mispredicts most.
        assert!(a.global_miss[1] > a.global_miss[2]);
        // Ideal bounds everyone's savings.
        assert!(a.savings[0] >= a.savings[3]);
    }
}
