//! ASCII renderings of the paper's bar figures.
//!
//! The paper presents Figures 6–10 as stacked bars; [`figure_chart`]
//! reproduces that visual form in the terminal. One column of glyphs is
//! 2% of the application's idle periods; misses stack past the 100%
//! mark exactly as the paper's bars run past 100% (up to 140% on its
//! y-axes).

use crate::workbench::Workbench;
use pcap_core::PcapVariant;
use pcap_sim::{PowerManagerKind, PredictionCounts};
use std::fmt::Write as _;

/// Glyphs for the stacked segments.
const HIT_PRIMARY: char = '█';
const HIT_BACKUP: char = '▓';
const NOT_PREDICTED: char = '░';
const MISS: char = '▒';

/// Cells per 100%.
const SCALE: f64 = 50.0;

/// One bar of a stacked chart: a label and (fraction, glyph) segments.
#[derive(Debug, Clone)]
pub struct ChartRow {
    /// Left-hand label ("mozilla TP").
    pub label: String,
    /// Segments, drawn in order; fractions are of the 100% mark.
    pub segments: Vec<(f64, char)>,
}

/// Renders a stacked horizontal bar chart.
pub fn stacked_chart(title: &str, rows: &[ChartRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}\n");
    let label_width = rows.iter().map(|r| r.label.len()).max().unwrap_or(0);
    for row in rows {
        let _ = write!(out, "{:<label_width$} |", row.label);
        let mut drawn = 0usize;
        let mut exact = 0.0f64;
        for &(fraction, glyph) in &row.segments {
            exact += fraction.max(0.0) * SCALE;
            let target = exact.round() as usize;
            for _ in drawn..target {
                out.push(glyph);
            }
            drawn = drawn.max(target);
        }
        // Mark the 100% line if the bar stops short of it.
        let full = SCALE as usize;
        if drawn < full {
            for _ in drawn..full {
                out.push(' ');
            }
            drawn = full;
        }
        out.push('|');
        let _ = writeln!(out, " {:>4.0}%", 100.0 * drawn as f64 / SCALE);
    }
    let _ = writeln!(
        out,
        "\n{HIT_PRIMARY} hit (primary)   {HIT_BACKUP} hit (backup)   \
         {NOT_PREDICTED} not predicted   {MISS} miss   (bar = 100% of idle periods; misses stack past it)"
    );
    out
}

fn counts_row(label: String, c: &PredictionCounts, split_backup: bool) -> ChartRow {
    let f = |n: u64| {
        if c.opportunities == 0 {
            0.0
        } else {
            n as f64 / c.opportunities as f64
        }
    };
    let segments = if split_backup {
        vec![
            (f(c.hit_primary), HIT_PRIMARY),
            (f(c.hit_backup), HIT_BACKUP),
            (f(c.not_predicted), NOT_PREDICTED),
            (f(c.misses()), MISS),
        ]
    } else {
        vec![
            (f(c.hits()), HIT_PRIMARY),
            (f(c.not_predicted), NOT_PREDICTED),
            (f(c.misses()), MISS),
        ]
    };
    ChartRow { label, segments }
}

/// The figures that have a bar-chart form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Figure 6: local predictors (hit / not predicted / miss).
    Fig6,
    /// Figure 7: global predictor (hit / not predicted / miss).
    Fig7,
    /// Figure 8: energy distribution (one savings bar per config).
    Fig8,
    /// Figure 9: PCAP variants with the primary/backup split.
    Fig9,
    /// Figure 10: table reuse with the primary/backup split.
    Fig10,
}

impl Figure {
    /// Parses a CLI name ("fig6" … "fig10").
    pub fn by_name(name: &str) -> Option<Figure> {
        match name {
            "fig6" => Some(Figure::Fig6),
            "fig7" => Some(Figure::Fig7),
            "fig8" => Some(Figure::Fig8),
            "fig9" => Some(Figure::Fig9),
            "fig10" => Some(Figure::Fig10),
            _ => None,
        }
    }
}

/// Renders one of the paper's bar figures from a prepared workbench.
pub fn figure_chart(bench: &Workbench, figure: Figure) -> String {
    let headline = [
        PowerManagerKind::Timeout,
        PowerManagerKind::LT,
        PowerManagerKind::PCAP,
    ];
    match figure {
        Figure::Fig6 | Figure::Fig7 => {
            let local = figure == Figure::Fig6;
            let mut rows = Vec::new();
            for (idx, trace) in bench.traces().iter().enumerate() {
                for kind in headline {
                    let r = bench.report(idx, kind);
                    let c = if local { r.local } else { r.global };
                    rows.push(counts_row(
                        format!("{:<8} {}", trace.app, kind.label()),
                        &c,
                        false,
                    ));
                }
            }
            let title = if local {
                "Figure 6: local shutdown predictors"
            } else {
                "Figure 7: global shutdown predictor"
            };
            stacked_chart(title, &rows)
        }
        Figure::Fig8 => {
            let mut rows = Vec::new();
            for (idx, trace) in bench.traces().iter().enumerate() {
                for kind in [
                    PowerManagerKind::Oracle,
                    PowerManagerKind::Timeout,
                    PowerManagerKind::LT,
                    PowerManagerKind::PCAP,
                ] {
                    let r = bench.report(idx, kind);
                    let base = r.base_energy.total().0;
                    rows.push(ChartRow {
                        label: format!("{:<8} {}", trace.app, kind.label()),
                        segments: vec![
                            (r.energy.busy.0 / base, HIT_PRIMARY),
                            (
                                (r.energy.idle_short + r.energy.idle_long).0 / base,
                                NOT_PREDICTED,
                            ),
                            (r.energy.power_cycle.0 / base, MISS),
                        ],
                    });
                }
            }
            let mut out = stacked_chart(
                "Figure 8: energy distribution (fraction of unmanaged energy consumed)",
                &rows,
            );
            out.push_str(
                "█ busy I/O   ░ idle (short+long residual)   ▒ power cycle — shorter bars save more\n",
            );
            out
        }
        Figure::Fig9 => {
            let kinds: Vec<PowerManagerKind> = [
                PcapVariant::Base,
                PcapVariant::History,
                PcapVariant::FileDescriptor,
                PcapVariant::FileDescriptorHistory,
            ]
            .into_iter()
            .map(|variant| PowerManagerKind::Pcap {
                variant,
                reuse: true,
            })
            .collect();
            split_figure_chart(bench, "Figure 9: predictor optimizations", &kinds)
        }
        Figure::Fig10 => split_figure_chart(
            bench,
            "Figure 10: predictor table reuse",
            &[
                PowerManagerKind::PCAP,
                PowerManagerKind::Pcap {
                    variant: PcapVariant::Base,
                    reuse: false,
                },
                PowerManagerKind::LT,
                PowerManagerKind::LearningTree { reuse: false },
            ],
        ),
    }
}

fn split_figure_chart(bench: &Workbench, title: &str, kinds: &[PowerManagerKind]) -> String {
    let mut rows = Vec::new();
    for (idx, trace) in bench.traces().iter().enumerate() {
        for &kind in kinds {
            let r = bench.report(idx, kind);
            rows.push(counts_row(
                format!("{:<8} {:<6}", trace.app, kind.label()),
                &r.global,
                true,
            ));
        }
    }
    stacked_chart(title, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacked_chart_marks_100_percent() {
        let rows = vec![
            ChartRow {
                label: "full".into(),
                segments: vec![(1.0, '█')],
            },
            ChartRow {
                label: "over".into(),
                segments: vec![(1.0, '█'), (0.2, '▒')],
            },
            ChartRow {
                label: "part".into(),
                segments: vec![(0.5, '█')],
            },
        ];
        let chart = stacked_chart("demo", &rows);
        assert!(chart.contains("## demo"));
        assert!(chart.contains("100%"));
        assert!(chart.contains("120%"));
        // The partial bar pads to the 100% mark with spaces.
        let part_line = chart.lines().find(|l| l.starts_with("part")).unwrap();
        assert!(part_line.contains("█"));
        assert!(part_line.trim_end().ends_with("100%"));
    }

    #[test]
    fn figure_names_parse() {
        assert_eq!(Figure::by_name("fig7"), Some(Figure::Fig7));
        assert_eq!(Figure::by_name("fig10"), Some(Figure::Fig10));
        assert_eq!(Figure::by_name("table1"), None);
    }

    #[test]
    fn counts_row_fractions() {
        let c = PredictionCounts {
            opportunities: 10,
            hit_primary: 5,
            hit_backup: 3,
            miss_primary: 2,
            miss_backup: 0,
            not_predicted: 2,
        };
        let row = counts_row("x".into(), &c, true);
        assert_eq!(row.segments.len(), 4);
        assert!((row.segments[0].0 - 0.5).abs() < 1e-12);
        let merged = counts_row("x".into(), &c, false);
        assert!((merged.segments[0].0 - 0.8).abs() < 1e-12);
    }
}
