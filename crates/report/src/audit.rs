//! Rendering of the decision-audit stream: `pcap audit` summary and
//! mispredict tables, `pcap explain` narrative tables reproducing the
//! paper's §6 per-application claims, and the golden-snapshot audit
//! files.
//!
//! Everything here is a deterministic function of an [`AuditOutcome`]
//! (itself a pure function of `(trace, config, manager kind)`), so the
//! rendered output can be golden-snapshotted alongside the report grid.

use crate::tables::{joules, pct1, Table};
use crate::workbench::Workbench;
use pcap_disk::Joules;
use pcap_sim::{
    audit_prepared, records_to_jsonl, AuditOutcome, DecisionRecord, GapVerdict, LogHistogram,
    PowerManagerKind,
};
use pcap_types::Signature;
use std::collections::HashSet;

/// Audits one workbench application under `kind`, reusing the
/// workbench's prepared streams.
pub fn audit_app(bench: &Workbench, trace_idx: usize, kind: PowerManagerKind) -> AuditOutcome {
    audit_prepared(bench.prepared(trace_idx), bench.config(), kind)
}

/// The `pcap audit` tables: the decision/energy summary plus the
/// per-PC and per-signature mispredict aggregations (top
/// `top_misses` of each).
pub fn audit_tables(outcome: &AuditOutcome, top_misses: usize) -> Vec<Table> {
    let mut tables = vec![summary_table(outcome)];
    tables.extend(top_miss_tables(outcome, top_misses));
    tables
}

/// The `pcap explain` tables: signature behaviour, the idle-gap
/// distribution, and the per-application narrative tying the measured
/// numbers back to the paper's §6 claims.
pub fn explain_tables(outcome: &AuditOutcome) -> Vec<Table> {
    vec![
        signature_table(outcome),
        gap_distribution_table(outcome),
        narrative_table(outcome),
    ]
}

/// Aggregate counters and energy for one audited app × manager.
pub fn summary_table(outcome: &AuditOutcome) -> Table {
    let m = &outcome.metrics;
    let report = &outcome.report;
    let mut t = Table::new(
        format!("Audit summary: {} under {}", report.app, report.manager),
        &["metric", "value"],
    );
    let count = |v: u64| v.to_string();
    t.row(vec!["decisions".into(), count(m.decisions)]);
    t.row(vec!["opportunities".into(), count(m.opportunities)]);
    t.row(vec!["hits".into(), count(m.hits)]);
    t.row(vec!["misses".into(), count(m.misses)]);
    t.row(vec!["not predicted".into(), count(m.not_predicted)]);
    t.row(vec!["short gaps".into(), count(m.short)]);
    t.row(vec![
        "shutdowns (primary)".into(),
        count(m.shutdowns_primary),
    ]);
    t.row(vec!["shutdowns (backup)".into(), count(m.shutdowns_backup)]);
    t.row(vec![
        "energy delta vs always-on".into(),
        joules(Joules(m.energy_delta_j)),
    ]);
    t.row(vec!["managed energy".into(), joules(report.energy.total())]);
    t.row(vec![
        "always-on energy".into(),
        joules(report.base_energy.total()),
    ]);
    t.row(vec!["energy savings".into(), pct1(report.savings())]);
    t
}

/// One aggregation bucket of the mispredict tables.
struct MissGroup {
    misses: u64,
    not_predicted: u64,
    wasted: f64,
}

impl MissGroup {
    fn fold(&mut self, record: &DecisionRecord) {
        match record.verdict {
            GapVerdict::Miss => {
                self.misses += 1;
                // A miss costs energy: its delta is positive.
                self.wasted += record.energy_delta_j.max(0.0);
            }
            GapVerdict::NotPredicted => self.not_predicted += 1,
            _ => {}
        }
    }
}

fn top_groups<K: Ord + Copy>(
    records: &[DecisionRecord],
    key: impl Fn(&DecisionRecord) -> K,
    limit: usize,
) -> Vec<(K, MissGroup)> {
    let mut groups: Vec<(K, MissGroup)> = Vec::new();
    for record in records {
        if !matches!(record.verdict, GapVerdict::Miss | GapVerdict::NotPredicted) {
            continue;
        }
        let k = key(record);
        let group = match groups.binary_search_by_key(&k, |(gk, _)| *gk) {
            Ok(i) => &mut groups[i].1,
            Err(i) => {
                groups.insert(
                    i,
                    (
                        k,
                        MissGroup {
                            misses: 0,
                            not_predicted: 0,
                            wasted: 0.0,
                        },
                    ),
                );
                &mut groups[i].1
            }
        };
        group.fold(record);
    }
    // Most mispredictions first; ties broken by the (already unique)
    // key ascending for deterministic output.
    groups.sort_by(|(ka, a), (kb, b)| {
        (b.misses + b.not_predicted, *ka).cmp(&(a.misses + a.not_predicted, *kb))
    });
    groups.truncate(limit);
    groups
}

/// Per-PC and per-signature mispredict aggregations (misses +
/// not-predicted opportunities), worst offenders first.
pub fn top_miss_tables(outcome: &AuditOutcome, limit: usize) -> Vec<Table> {
    let app = &outcome.report.app;
    let mut by_pc = Table::new(
        format!("Top mispredicting PCs: {app}"),
        &["pc", "misses", "not predicted", "wasted energy"],
    );
    for (pc, group) in top_groups(&outcome.records, |r| r.pc, limit) {
        by_pc.row(vec![
            format!("{:#010x}", pc.0),
            group.misses.to_string(),
            group.not_predicted.to_string(),
            joules(Joules(group.wasted)),
        ]);
    }
    let mut by_sig = Table::new(
        format!("Top mispredicting signatures: {app}"),
        &["signature", "misses", "not predicted", "wasted energy"],
    );
    for (sig, group) in top_groups(&outcome.records, |r| r.signature, limit) {
        by_sig.row(vec![
            match sig {
                Some(s) => format!("{:#010x}", s.0),
                None => "(none)".into(),
            },
            group.misses.to_string(),
            group.not_predicted.to_string(),
            joules(Joules(group.wasted)),
        ]);
    }
    vec![by_pc, by_sig]
}

/// Fraction of decisions whose signature was already observed in an
/// earlier decision, and the number of distinct signatures. Low
/// recurrence is the paper's explanation for nedit: a single
/// non-repetitive process gives path correlation nothing to learn from.
pub fn signature_recurrence(records: &[DecisionRecord]) -> (f64, usize, u64, u64) {
    let mut seen: HashSet<Signature> = HashSet::new();
    let (mut with_sig, mut recurred) = (0u64, 0u64);
    for record in records {
        if let Some(sig) = record.signature {
            with_sig += 1;
            if !seen.insert(sig) {
                recurred += 1;
            }
        }
    }
    let rate = if with_sig == 0 {
        0.0
    } else {
        recurred as f64 / with_sig as f64
    };
    (rate, seen.len(), recurred, with_sig)
}

fn aliasing(outcome: &AuditOutcome) -> (u64, usize, f64) {
    let aliases = outcome.report.table_aliases.unwrap_or(0);
    let entries = outcome.report.table_entries.unwrap_or(0);
    let rate = if aliases + entries as u64 == 0 {
        0.0
    } else {
        aliases as f64 / (aliases + entries as u64) as f64
    };
    (aliases, entries, rate)
}

/// Signature-level behaviour of the audited manager: table population,
/// detected aliasing, and signature recurrence.
pub fn signature_table(outcome: &AuditOutcome) -> Table {
    let (aliases, entries, alias_rate) = aliasing(outcome);
    let (recur_rate, distinct, recurred, with_sig) = signature_recurrence(&outcome.records);
    let mut t = Table::new(
        format!("Signature behaviour: {}", outcome.report.app),
        &["metric", "value"],
    );
    t.row(vec!["table entries".into(), entries.to_string()]);
    t.row(vec!["aliases detected".into(), aliases.to_string()]);
    t.row(vec!["aliasing rate".into(), pct1(alias_rate)]);
    t.row(vec!["distinct signatures".into(), distinct.to_string()]);
    t.row(vec![
        "signature recurrence".into(),
        format!("{} ({recurred}/{with_sig})", pct1(recur_rate)),
    ]);
    t
}

fn bucket_label(index: usize) -> String {
    let (lo, hi) = LogHistogram::bucket_bounds(index);
    if index == 0 {
        "0".into()
    } else if index == 31 {
        format!("≥ {lo}")
    } else {
        format!("[{lo}, {hi})")
    }
}

/// The log₂-bucketed merged idle-gap distribution.
pub fn gap_distribution_table(outcome: &AuditOutcome) -> Table {
    let hist = &outcome.metrics.gap_histogram;
    let total = hist.total().max(1);
    let mut t = Table::new(
        format!("Idle-gap distribution: {}", outcome.report.app),
        &["gap bucket (µs)", "gaps", "share"],
    );
    for (index, &count) in hist.counts().iter().enumerate() {
        if count == 0 {
            continue;
        }
        t.row(vec![
            bucket_label(index),
            count.to_string(),
            pct1(count as f64 / total as f64),
        ]);
    }
    t
}

fn modal_bucket(hist: &LogHistogram) -> Option<(usize, u64)> {
    hist.counts()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .max_by_key(|&(index, &count)| (count, usize::MAX - index))
        .map(|(index, &count)| (index, count))
}

/// The per-application narrative: the measured numbers restated as the
/// paper's §6 observations. The three apps §6 singles out get their
/// specific claim; every app gets the generic coverage line.
pub fn narrative_table(outcome: &AuditOutcome) -> Table {
    let m = &outcome.metrics;
    let report = &outcome.report;
    let mut t = Table::new(
        format!("Explained: {} under {}", report.app, report.manager),
        &["observation"],
    );
    t.row(vec![format!(
        "{} covered {} of {} shutdown opportunities ({} hits, {} misses, {} unpredicted) for {} savings.",
        report.manager,
        pct1(report.global.coverage()),
        m.opportunities,
        m.hits,
        m.misses,
        m.not_predicted,
        pct1(report.savings()),
    )]);
    match &*report.app {
        "mozilla" => {
            let (aliases, entries, rate) = aliasing(outcome);
            t.row(vec![format!(
                "§6.2: mozilla's many short subpaths collide on signatures — measured aliasing \
                 rate {} ({aliases} aliased learns against {entries} table entries).",
                pct1(rate),
            )]);
        }
        "nedit" => {
            let (rate, distinct, recurred, with_sig) = signature_recurrence(&outcome.records);
            t.row(vec![format!(
                "§6.2: nedit's single non-repetitive process defeats path correlation — only \
                 {} of decisions repeat an already-seen signature ({recurred}/{with_sig}, \
                 {distinct} distinct).",
                pct1(rate),
            )]);
        }
        "mplayer" => {
            if let Some((index, count)) = modal_bucket(&m.gap_histogram) {
                t.row(vec![format!(
                    "§6.2: mplayer's buffered playback drains its buffer between bursts — the \
                     modal idle gap falls in {} µs ({count} of {} gaps, {}).",
                    bucket_label(index),
                    m.decisions,
                    pct1(count as f64 / m.decisions.max(1) as f64),
                )]);
            }
        }
        _ => {}
    }
    t.row(vec![format!(
        "Power management changed gap energy by {} vs always-on across {} decisions.",
        joules(Joules(m.energy_delta_j)),
        m.decisions,
    )]);
    t
}

/// Renders tables as concatenated CSV sections with `# title` headers —
/// the same layout the experiment tables use under `golden/tables/`.
pub fn tables_to_csv(tables: &[Table]) -> String {
    let mut body = String::new();
    for (i, table) in tables.iter().enumerate() {
        if i > 0 {
            body.push('\n');
        }
        body.push_str(&format!("# {}\n", table.title));
        body.push_str(&table.to_csv());
    }
    body
}

/// How many mispredict rows the golden audit snapshot keeps per table.
pub const GOLDEN_TOP_MISSES: usize = 10;

/// The full golden audit CSV for one app: summary, signature
/// behaviour, gap distribution and the mispredict tables.
pub fn audit_snapshot_csv(outcome: &AuditOutcome) -> String {
    let mut tables = vec![
        summary_table(outcome),
        signature_table(outcome),
        gap_distribution_table(outcome),
    ];
    tables.extend(top_miss_tables(outcome, GOLDEN_TOP_MISSES));
    tables_to_csv(&tables)
}

/// The golden decision log: every non-`Short` decision as JSONL.
/// `Short` gaps are filtered because they carry no counter effect and
/// an exactly-zero energy delta, and would dominate the file (see
/// DESIGN.md §8).
pub fn golden_jsonl(outcome: &AuditOutcome) -> String {
    let kept: Vec<DecisionRecord> = outcome
        .records
        .iter()
        .filter(|r| r.verdict != GapVerdict::Short)
        .copied()
        .collect();
    records_to_jsonl(&kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_sim::SimConfig;
    use pcap_trace::{ApplicationTrace, TraceRunBuilder};
    use pcap_types::{Fd, FileId, IoKind, Pc, Pid, SimTime};

    fn bench_named(app: &str) -> Workbench {
        let mut trace = ApplicationTrace::new(app);
        for r in 0..3u64 {
            let mut b = TraceRunBuilder::new(Pid(1));
            for i in 0..3u32 {
                b.io(
                    SimTime::from_millis(1000 + r * 50 + u64::from(i) * 200),
                    Pid(1),
                    Pc(0x100 + i),
                    IoKind::Read,
                    Fd(3),
                    FileId(1),
                    u64::from(i) * 4096,
                    4096,
                );
            }
            b.exit(SimTime::from_secs(40 + r), Pid(1));
            trace.runs.push(b.finish().unwrap());
        }
        Workbench::from_traces_seeded(42, vec![trace], SimConfig::paper())
    }

    #[test]
    fn audit_tables_are_consistent_with_report() {
        let bench = bench_named("tiny");
        let outcome = audit_app(&bench, 0, PowerManagerKind::PCAP);
        assert_eq!(outcome.report, bench.report(0, PowerManagerKind::PCAP));
        let tables = audit_tables(&outcome, 5);
        assert_eq!(tables.len(), 3);
        let summary = tables[0].render();
        assert!(summary.contains("decisions"));
        assert!(summary.contains(&outcome.metrics.decisions.to_string()));
        // Each mispredict table respects the row bound.
        assert!(tables[1].rows.len() <= 5);
        assert!(tables[2].rows.len() <= 5);
    }

    #[test]
    fn explain_narrative_names_the_section_six_apps() {
        for app in ["mozilla", "nedit", "mplayer", "writer"] {
            let bench = bench_named(app);
            let outcome = audit_app(&bench, 0, PowerManagerKind::PCAP);
            let narrative = narrative_table(&outcome).render();
            if app == "writer" {
                assert!(!narrative.contains("§6.2"), "{narrative}");
            } else {
                assert!(narrative.contains("§6.2"), "{narrative}");
            }
        }
    }

    #[test]
    fn snapshot_csv_and_jsonl_are_deterministic() {
        let a = audit_app(&bench_named("tiny"), 0, PowerManagerKind::PCAP);
        let b = audit_app(&bench_named("tiny"), 0, PowerManagerKind::PCAP);
        assert_eq!(audit_snapshot_csv(&a), audit_snapshot_csv(&b));
        assert_eq!(golden_jsonl(&a), golden_jsonl(&b));
        // The golden log filters Short decisions.
        assert!(!golden_jsonl(&a).contains("\"verdict\":\"Short\""));
        assert!(audit_snapshot_csv(&a).starts_with("# Audit summary"));
    }

    #[test]
    fn signature_recurrence_counts_repeats() {
        let bench = bench_named("tiny");
        let outcome = audit_app(&bench, 0, PowerManagerKind::PCAP);
        let (rate, distinct, recurred, with_sig) = signature_recurrence(&outcome.records);
        assert_eq!(recurred + distinct as u64, with_sig);
        assert!((0.0..=1.0).contains(&rate));
        // Three identical runs: the same paths recur.
        assert!(recurred > 0, "identical runs must repeat signatures");
    }
}
