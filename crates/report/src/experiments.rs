//! One experiment per table and figure of the paper's evaluation, plus
//! the ablations its prose discusses.

use crate::paper;
use crate::tables::{pct, Table};
use crate::workbench::Workbench;
use pcap_core::PcapVariant;
use pcap_sim::{
    evaluate_prepared, AppReport, PowerManagerKind, PreparedTrace, SimConfig, WorkloadProfile,
};
use pcap_types::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The regenerable experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Experiment {
    /// Table 1: applications and execution details.
    Table1,
    /// Table 2: disk states and transitions.
    Table2,
    /// Figure 6: local shutdown predictors.
    Fig6,
    /// Figure 7: global shutdown predictor.
    Fig7,
    /// Figure 8: energy distribution.
    Fig8,
    /// Figure 9: PCAP context optimizations (history, fd).
    Fig9,
    /// Figure 10: prediction-table reuse.
    Fig10,
    /// Table 3: prediction-table storage requirements.
    Table3,
    /// Ablations: TP timeout sweep, wait-window sweep, history-length
    /// sweep, classic dynamic predictors, capture-strategy overhead.
    Ablations,
    /// Extension: all six applications overlaid into whole-system
    /// sessions (the §5 multi-process scenario at full scale).
    System,
    /// Extension: the full §7 multi-state ladder engine — predictive
    /// vs ski-rental vs clairvoyant descent over the mobile-ATA
    /// ladder, with competitive ratios and bottom-out distributions.
    Multistate,
    /// Extension: the learning-augmented λ-ladder (Antoniadis et al.)
    /// — gap-energy competitive ratios vs clairvoyant across a
    /// λ × prediction-error-rate sweep, against the per-ladder
    /// consistency/robustness envelope, with a reading-guide
    /// narrative.
    Lambda,
}

impl Experiment {
    /// Every experiment, in paper order.
    pub const ALL: [Experiment; 12] = [
        Experiment::Table1,
        Experiment::Table2,
        Experiment::Fig6,
        Experiment::Fig7,
        Experiment::Fig8,
        Experiment::Fig9,
        Experiment::Fig10,
        Experiment::Table3,
        Experiment::Ablations,
        Experiment::System,
        Experiment::Multistate,
        Experiment::Lambda,
    ];

    /// CLI name ("table1", "fig6", …).
    pub fn name(self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Table2 => "table2",
            Experiment::Fig6 => "fig6",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::Table3 => "table3",
            Experiment::Ablations => "ablations",
            Experiment::System => "system",
            Experiment::Multistate => "multistate",
            Experiment::Lambda => "lambda",
        }
    }

    /// Looks an experiment up by its CLI name.
    pub fn by_name(name: &str) -> Option<Experiment> {
        Experiment::ALL.into_iter().find(|e| e.name() == name)
    }

    /// Runs the experiment on a prepared workbench.
    pub fn run(self, bench: &Workbench) -> Vec<Table> {
        match self {
            Experiment::Table1 => vec![table1(bench)],
            Experiment::Table2 => vec![table2(bench.config())],
            Experiment::Fig6 => vec![fig6(bench)],
            Experiment::Fig7 => vec![fig7(bench)],
            Experiment::Fig8 => vec![fig8(bench)],
            Experiment::Fig9 => vec![fig9(bench)],
            Experiment::Fig10 => vec![fig10(bench)],
            Experiment::Table3 => vec![table3(bench)],
            Experiment::Ablations => ablations(bench),
            Experiment::System => vec![system(bench)],
            Experiment::Multistate => multistate(bench),
            Experiment::Lambda => lambda(bench),
        }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The three predictors of Figures 6–8.
const HEADLINE: [PowerManagerKind; 3] = [
    PowerManagerKind::Timeout,
    PowerManagerKind::LT,
    PowerManagerKind::PCAP,
];

/// Table 1 with paper reference columns.
pub fn table1(bench: &Workbench) -> Table {
    let mut t = Table::new(
        "Table 1: applications and execution details (measured vs paper)",
        &[
            "app",
            "execs",
            "global idle",
            "(paper)",
            "local idle",
            "(paper)",
            "total I/Os",
            "(paper)",
            "disk accesses",
            "cache hit",
        ],
    );
    for (trace_idx, reference) in (0..bench.traces().len()).zip(paper::TABLE1) {
        let p = WorkloadProfile::of_prepared(bench.prepared(trace_idx), bench.config());
        t.row(vec![
            p.app.to_string(),
            p.executions.to_string(),
            p.global_idle_periods.to_string(),
            reference.global_idle.to_string(),
            p.local_idle_periods.to_string(),
            reference.local_idle.to_string(),
            p.total_ios.to_string(),
            reference.total_ios.to_string(),
            p.disk_accesses.to_string(),
            pct(p.cache_hit_rate),
        ]);
    }
    t
}

/// Table 2: the disk model (constants plus derived breakeven).
pub fn table2(config: &SimConfig) -> Table {
    let d = &config.disk;
    let mut t = Table::new(
        "Table 2: states and state transitions of the simulated disk",
        &["parameter", "value"],
    );
    let rows: Vec<(&str, String)> = vec![
        ("busy power", d.busy_power.to_string()),
        ("idle power", d.idle_power.to_string()),
        ("standby power", d.standby_power.to_string()),
        ("spin-up energy", d.spinup_energy.to_string()),
        ("shutdown energy", d.shutdown_energy.to_string()),
        (
            "spin-up time",
            format!("{:.2} s", d.spinup_time.as_secs_f64()),
        ),
        (
            "shutdown time",
            format!("{:.2} s", d.shutdown_time.as_secs_f64()),
        ),
        (
            "breakeven time",
            format!("{:.2} s", d.breakeven_time().as_secs_f64()),
        ),
        (
            "breakeven (derived)",
            format!("{:.2} s", d.derived_breakeven().as_secs_f64()),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_owned(), v]);
    }
    t
}

fn fraction_rows(t: &mut Table, report: &AppReport, local: bool) {
    let c = if local { &report.local } else { &report.global };
    t.row(vec![
        report.app.to_string(),
        report.manager.clone(),
        c.opportunities.to_string(),
        pct(c.coverage()),
        pct(c.not_predicted_rate()),
        pct(c.miss_rate()),
    ]);
}

fn average_row(t: &mut Table, label: &str, reports: &[&AppReport], local: bool) {
    let n = reports.len() as f64;
    let mean = |f: &dyn Fn(&AppReport) -> f64| reports.iter().map(|r| f(r)).sum::<f64>() / n;
    let counts = |r: &AppReport| if local { r.local } else { r.global };
    t.row(vec![
        "AVERAGE".into(),
        label.to_owned(),
        String::new(),
        pct(mean(&|r| counts(r).coverage())),
        pct(mean(&|r| counts(r).not_predicted_rate())),
        pct(mean(&|r| counts(r).miss_rate())),
    ]);
}

fn predictor_figure(bench: &Workbench, title: &str, local: bool) -> Table {
    let mut t = Table::new(
        title,
        &[
            "app",
            "predictor",
            "idle periods",
            "hit",
            "not predicted",
            "miss",
        ],
    );
    for kind in HEADLINE {
        for trace_idx in 0..bench.traces().len() {
            let report = bench.report(trace_idx, kind);
            fraction_rows(&mut t, &report, local);
        }
    }
    for kind in HEADLINE {
        let reports: Vec<AppReport> = (0..bench.traces().len())
            .map(|i| bench.report(i, kind))
            .collect();
        let refs: Vec<&AppReport> = reports.iter().collect();
        average_row(&mut t, &kind.label(), &refs, local);
    }
    t
}

/// Figure 6: local shutdown predictors.
pub fn fig6(bench: &Workbench) -> Table {
    predictor_figure(
        bench,
        "Figure 6: local shutdown predictors (fractions of local idle periods)",
        true,
    )
}

/// Figure 7: the global shutdown predictor.
pub fn fig7(bench: &Workbench) -> Table {
    predictor_figure(
        bench,
        "Figure 7: global shutdown predictor (fractions of global idle periods)",
        false,
    )
}

/// Figure 8: energy distribution.
pub fn fig8(bench: &Workbench) -> Table {
    let mut t = Table::new(
        "Figure 8: energy distribution (% of unmanaged disk energy)",
        &[
            "app",
            "config",
            "busy I/O",
            "idle<breakeven",
            "idle>breakeven",
            "power cycle",
            "total",
            "savings",
        ],
    );
    let kinds = [
        None, // Base
        Some(PowerManagerKind::Oracle),
        Some(PowerManagerKind::Timeout),
        Some(PowerManagerKind::LT),
        Some(PowerManagerKind::PCAP),
    ];
    for (trace_idx, trace) in bench.traces().iter().enumerate() {
        for kind in kinds {
            let (label, energy, base_total) = match kind {
                None => {
                    let r = bench.report(trace_idx, PowerManagerKind::Timeout);
                    ("Base".to_owned(), r.base_energy, r.base_energy.total().0)
                }
                Some(k) => {
                    let r = bench.report(trace_idx, k);
                    (k.label(), r.energy, r.base_energy.total().0)
                }
            };
            let frac = |j: pcap_disk::Joules| pct(j.0 / base_total);
            t.row(vec![
                trace.app.to_string(),
                label,
                frac(energy.busy),
                frac(energy.idle_short),
                frac(energy.idle_long),
                frac(energy.power_cycle),
                frac(energy.total()),
                pct(1.0 - energy.total().0 / base_total),
            ]);
        }
    }
    // Averages over applications for the managed configurations.
    for kind in [
        PowerManagerKind::Oracle,
        PowerManagerKind::Timeout,
        PowerManagerKind::LT,
        PowerManagerKind::PCAP,
    ] {
        let n = bench.traces().len() as f64;
        let savings: f64 = (0..bench.traces().len())
            .map(|i| bench.report(i, kind).savings())
            .sum::<f64>()
            / n;
        t.row(vec![
            "AVERAGE".into(),
            kind.label(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            pct(savings),
        ]);
    }
    t
}

fn split_figure(bench: &Workbench, title: &str, kinds: &[PowerManagerKind]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "app",
            "predictor",
            "idle periods",
            "hit primary",
            "hit backup",
            "miss primary",
            "miss backup",
            "not predicted",
        ],
    );
    for (trace_idx, trace) in bench.traces().iter().enumerate() {
        for &kind in kinds {
            let r = bench.report(trace_idx, kind);
            let c = r.global;
            let f = |n: u64| {
                if c.opportunities == 0 {
                    "0%".to_owned()
                } else {
                    pct(n as f64 / c.opportunities as f64)
                }
            };
            t.row(vec![
                trace.app.to_string(),
                kind.label(),
                c.opportunities.to_string(),
                f(c.hit_primary),
                f(c.hit_backup),
                f(c.miss_primary),
                f(c.miss_backup),
                f(c.not_predicted),
            ]);
        }
    }
    for &kind in kinds {
        let n = bench.traces().len() as f64;
        let mean = |f: &dyn Fn(&pcap_sim::PredictionCounts) -> f64| {
            (0..bench.traces().len())
                .map(|i| {
                    let c = bench.report(i, kind).global;
                    if c.opportunities == 0 {
                        0.0
                    } else {
                        f(&c)
                    }
                })
                .sum::<f64>()
                / n
        };
        let o = |c: &pcap_sim::PredictionCounts| c.opportunities as f64;
        t.row(vec![
            "AVERAGE".into(),
            kind.label(),
            String::new(),
            pct(mean(&|c| c.hit_primary as f64 / o(c))),
            pct(mean(&|c| c.hit_backup as f64 / o(c))),
            pct(mean(&|c| c.miss_primary as f64 / o(c))),
            pct(mean(&|c| c.miss_backup as f64 / o(c))),
            pct(mean(&|c| c.not_predicted as f64 / o(c))),
        ]);
    }
    t
}

/// Figure 9: PCAP variants with primary/backup attribution.
pub fn fig9(bench: &Workbench) -> Table {
    let kinds: Vec<PowerManagerKind> = [
        PcapVariant::Base,
        PcapVariant::History,
        PcapVariant::FileDescriptor,
        PcapVariant::FileDescriptorHistory,
    ]
    .into_iter()
    .map(|variant| PowerManagerKind::Pcap {
        variant,
        reuse: true,
    })
    .collect();
    split_figure(
        bench,
        "Figure 9: predictor optimizations (history and file descriptors)",
        &kinds,
    )
}

/// Figure 10: prediction-table reuse.
pub fn fig10(bench: &Workbench) -> Table {
    split_figure(
        bench,
        "Figure 10: predictor table reuse",
        &[
            PowerManagerKind::PCAP,
            PowerManagerKind::Pcap {
                variant: PcapVariant::Base,
                reuse: false,
            },
            PowerManagerKind::LT,
            PowerManagerKind::LearningTree { reuse: false },
        ],
    )
}

/// Table 3: prediction-table storage.
pub fn table3(bench: &Workbench) -> Table {
    let mut t = Table::new(
        "Table 3: storage requirements (prediction-table entries, measured vs paper)",
        &[
            "app",
            "PCAP",
            "(paper)",
            "PCAPh",
            "(paper)",
            "PCAPf",
            "(paper)",
            "PCAPfh",
            "(paper)",
            "bytes (PCAPfh)",
        ],
    );
    for (trace_idx, reference) in (0..bench.traces().len()).zip(paper::TABLE3) {
        let entries = |variant: PcapVariant| -> usize {
            bench
                .report(
                    trace_idx,
                    PowerManagerKind::Pcap {
                        variant,
                        reuse: true,
                    },
                )
                .table_entries
                .unwrap_or(0)
        };
        let fh = entries(PcapVariant::FileDescriptorHistory);
        t.row(vec![
            bench.traces()[trace_idx].app.to_string(),
            entries(PcapVariant::Base).to_string(),
            reference.pcap.to_string(),
            entries(PcapVariant::History).to_string(),
            reference.pcap_h.to_string(),
            entries(PcapVariant::FileDescriptor).to_string(),
            reference.pcap_f.to_string(),
            fh.to_string(),
            reference.pcap_fh.to_string(),
            (fh * 4).to_string(),
        ]);
    }
    t
}

/// Extension: the six applications overlaid into concurrent
/// whole-system sessions — the environment §5's Global Shutdown
/// Predictor actually targets ("in real systems, many processes are
/// running concurrently"). Idle periods are much rarer (every process
/// must be idle at once), so predictor quality matters more.
pub fn system(bench: &Workbench) -> Table {
    let system_trace = pcap_trace::merge::merge_traces(bench.traces(), SimDuration::from_secs(2))
        .expect("valid traces merge");
    // One preparation shared by the profile and all five managers.
    let prepared = PreparedTrace::build(&system_trace, bench.config());
    let profile = WorkloadProfile::of_prepared(&prepared, bench.config());
    let mut t = Table::new(
        format!(
            "Extension: whole-system sessions ({} sessions, {} I/Os, {} global idle periods)",
            profile.executions, profile.total_ios, profile.global_idle_periods
        ),
        &[
            "predictor",
            "idle periods",
            "hit",
            "not predicted",
            "miss",
            "savings",
        ],
    );
    for kind in [
        PowerManagerKind::Timeout,
        PowerManagerKind::LT,
        PowerManagerKind::PCAP,
        PowerManagerKind::Pcap {
            variant: PcapVariant::History,
            reuse: true,
        },
        PowerManagerKind::Oracle,
    ] {
        let r = evaluate_prepared(&prepared, bench.config(), kind);
        t.row(vec![
            r.manager.clone(),
            r.global.opportunities.to_string(),
            pct(r.global.coverage()),
            pct(r.global.not_predicted_rate()),
            pct(r.global.miss_rate()),
            pct(r.savings()),
        ]);
    }
    t
}

/// The ablation suite discussed in the paper's prose.
pub fn ablations(bench: &Workbench) -> Vec<Table> {
    vec![
        ablation_timeout(bench),
        ablation_wait_window(bench),
        ablation_history(bench),
        ablation_table_capacity(bench),
        ablation_signature_scheme(bench),
        ablation_readahead(bench),
        ablation_classic(bench),
        ablation_multistate(bench),
        ablation_capture(bench),
    ]
}

fn averaged_suite(
    bench: &Workbench,
    config: &SimConfig,
    kind: PowerManagerKind,
) -> (f64, f64, f64) {
    let n = bench.traces().len() as f64;
    let mut coverage = 0.0;
    let mut miss = 0.0;
    let mut savings = 0.0;
    for trace_idx in 0..bench.traces().len() {
        // Predictor-only ablations share the workbench's prepared
        // streams; stream-relevant ones transparently rebuild.
        let r = bench.evaluate_with(trace_idx, config, kind);
        coverage += r.global.coverage();
        miss += r.global.miss_rate();
        savings += r.savings();
    }
    (coverage / n, miss / n, savings / n)
}

/// §6.3: "TP with timeout of 5.43 seconds eliminates on average 74% of
/// energy, however the global mispredictions increase to 12%."
fn ablation_timeout(bench: &Workbench) -> Table {
    let mut t = Table::new(
        "Ablation: TP timeout sweep (global averages)",
        &["timeout", "coverage", "miss", "savings"],
    );
    for secs in [2.0, 5.43, 10.0, 20.0, 30.0] {
        let mut config = bench.config().clone();
        config.timeout = SimDuration::from_secs_f64(secs);
        let (cov, miss, sav) = averaged_suite(bench, &config, PowerManagerKind::Timeout);
        t.row(vec![format!("{secs} s"), pct(cov), pct(miss), pct(sav)]);
    }
    t
}

fn ablation_wait_window(bench: &Workbench) -> Table {
    let mut t = Table::new(
        "Ablation: PCAP wait-window sweep (global averages)",
        &["wait window", "coverage", "miss", "savings"],
    );
    for secs in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut config = bench.config().clone();
        config.wait_window = SimDuration::from_secs_f64(secs);
        let (cov, miss, sav) = averaged_suite(bench, &config, PowerManagerKind::PCAP);
        t.row(vec![format!("{secs} s"), pct(cov), pct(miss), pct(sav)]);
    }
    t
}

/// §6.4.1: history length 6 "maximizes energy savings and minimizes
/// the number of mispredictions. Longer history does not reduce
/// mispredictions any further."
fn ablation_history(bench: &Workbench) -> Table {
    let mut t = Table::new(
        "Ablation: PCAPh history-length sweep (global averages)",
        &["history length", "coverage", "miss", "savings"],
    );
    for len in [1usize, 2, 4, 6, 8, 10] {
        let mut config = bench.config().clone();
        config.pcap_history_len = len;
        let (cov, miss, sav) = averaged_suite(
            bench,
            &config,
            PowerManagerKind::Pcap {
                variant: PcapVariant::History,
                reuse: true,
            },
        );
        t.row(vec![len.to_string(), pct(cov), pct(miss), pct(sav)]);
    }
    t
}

fn ablation_classic(bench: &Workbench) -> Table {
    let mut t = Table::new(
        "Ablation: classic dynamic predictors vs PCAP (global averages)",
        &["predictor", "coverage", "miss", "savings"],
    );
    for kind in [
        PowerManagerKind::Timeout,
        PowerManagerKind::ExponentialAverage,
        PowerManagerKind::AdaptiveTimeout,
        PowerManagerKind::LastBusy,
        PowerManagerKind::Stochastic,
        PowerManagerKind::LT,
        PowerManagerKind::PCAP,
        PowerManagerKind::Oracle,
    ] {
        let (cov, miss, sav) = averaged_suite(bench, bench.config(), kind);
        t.row(vec![kind.label(), pct(cov), pct(miss), pct(sav)]);
    }
    t
}

/// §6.4.2: "some storage limit can be imposed and an LRU replacement of
/// old signatures can be used" — how small can the prediction table get
/// before coverage degrades?
fn ablation_table_capacity(bench: &Workbench) -> Table {
    let mut t = Table::new(
        "Ablation: PCAP prediction-table LRU capacity (global averages)",
        &["capacity", "coverage", "miss", "savings"],
    );
    for capacity in [Some(4usize), Some(8), Some(16), Some(32), Some(64), None] {
        let mut config = bench.config().clone();
        config.pcap_table_capacity = capacity;
        let (cov, miss, sav) = averaged_suite(bench, &config, PowerManagerKind::PCAP);
        t.row(vec![
            capacity.map_or_else(|| "unbounded".into(), |c| c.to_string()),
            pct(cov),
            pct(miss),
            pct(sav),
        ]);
    }
    t
}

/// §7 future work, implemented: PC-based readahead in the file cache.
/// Streaming call sites learn their run lengths; the first access of a
/// recurring run pulls the predicted remainder in one disk access —
/// fewer accesses, less per-access overhead, longer undisturbed gaps.
fn ablation_readahead(bench: &Workbench) -> Table {
    let mut t = Table::new(
        "Extension: PC-based readahead (§7) — plain cache vs PC readahead (PCAP manager)",
        &[
            "app",
            "accesses",
            "accesses+ra",
            "prefetched pages",
            "savings",
            "savings+ra",
        ],
    );
    let mut ra_config = bench.config().clone();
    ra_config.cache.readahead = Some(pcap_cache::ReadaheadConfig::default());
    for (trace_idx, trace) in bench.traces().iter().enumerate() {
        let plain_profile = WorkloadProfile::of_prepared(bench.prepared(trace_idx), bench.config());
        // One readahead preparation feeds the profile, the simulation,
        // and the prefetched-page totals — the trace is re-filtered
        // exactly once under the readahead cache.
        let ra_prepared = PreparedTrace::build(trace, &ra_config);
        let ra_profile = WorkloadProfile::of_prepared(&ra_prepared, &ra_config);
        let plain = bench.report(trace_idx, PowerManagerKind::PCAP);
        let ra = evaluate_prepared(&ra_prepared, &ra_config, PowerManagerKind::PCAP);
        let prefetched: u64 = ra_prepared
            .streams()
            .iter()
            .map(|s| s.cache_stats.prefetched_pages)
            .sum();
        t.row(vec![
            trace.app.to_string(),
            plain_profile.disk_accesses.to_string(),
            ra_profile.disk_accesses.to_string(),
            prefetched.to_string(),
            pct(plain.savings()),
            pct(ra.savings()),
        ]);
    }
    t
}

/// §3.2: "we do not explore alternative encodings" — so this repo does.
/// Compares the paper's additive path encoding against order-sensitive
/// alternatives, with measured aliasing (distinct paths colliding on a
/// signature) instead of the paper's assumption that it never happens.
fn ablation_signature_scheme(bench: &Workbench) -> Table {
    use pcap_core::SignatureScheme;
    let mut t = Table::new(
        "Ablation: signature encoding schemes (global averages + total aliases)",
        &[
            "scheme", "coverage", "miss", "savings", "entries", "aliases",
        ],
    );
    for scheme in [
        SignatureScheme::Additive,
        SignatureScheme::XorRotate,
        SignatureScheme::HashChain,
    ] {
        let mut config = bench.config().clone();
        config.signature_scheme = scheme;
        let n = bench.traces().len() as f64;
        let mut cov = 0.0;
        let mut miss = 0.0;
        let mut sav = 0.0;
        let mut entries = 0usize;
        let mut aliases = 0u64;
        for trace_idx in 0..bench.traces().len() {
            let r = bench.evaluate_with(trace_idx, &config, PowerManagerKind::PCAP);
            cov += r.global.coverage();
            miss += r.global.miss_rate();
            sav += r.savings();
            entries += r.table_entries.unwrap_or(0);
            aliases += r.table_aliases.unwrap_or(0);
        }
        t.row(vec![
            scheme.label().to_owned(),
            pct(cov / n),
            pct(miss / n),
            pct(sav / n),
            entries.to_string(),
            aliases.to_string(),
        ]);
    }
    t
}

/// §7's extension sketch, implemented as a real power manager
/// (`PCAP+ms`): the wait-window preceding every shutdown is spent in
/// the deepest shallow low-power state that pays off, instead of
/// spinning idle. Predictions are identical to PCAP; only the energy
/// differs.
fn ablation_multistate(bench: &Workbench) -> Table {
    let mut t = Table::new(
        "Extension: multi-state wait-windows (§7) — PCAP vs PCAP+ms",
        &[
            "app",
            "PCAP savings",
            "PCAP+ms savings",
            "extra energy saved",
        ],
    );
    for (trace_idx, trace) in bench.traces().iter().enumerate() {
        let plain = bench.report(trace_idx, PowerManagerKind::PCAP);
        let multi = bench.report(trace_idx, PowerManagerKind::MultiStatePcap);
        t.row(vec![
            trace.app.to_string(),
            pct(plain.savings()),
            pct(multi.savings()),
            crate::tables::joules(plain.energy.total() - multi.energy.total()),
        ]);
    }
    t
}

/// §7 at full depth: the multi-state *engine* (as opposed to the
/// wait-window substitution of `PCAP+ms`) descends the mobile-ATA
/// ladder gap by gap under three policies — trust the prediction and
/// jump ([`pcap_disk::PredictiveJump`]), prediction-free ski-rental
/// descent along the cost envelope ([`pcap_disk::SkiRental`]), and the
/// clairvoyant static optimum ([`pcap_disk::OracleLadder`]).
/// Competitive ratios are computed on gap energy (total minus busy:
/// the part a policy can influence).
pub fn multistate(bench: &Workbench) -> Vec<Table> {
    use pcap_disk::{MultiStateParams, OracleLadder, PredictiveJump, SkiRental};
    use pcap_sim::evaluate_prepared_multistate;

    let ladder = MultiStateParams::mobile_ata();
    let ski = SkiRental::new(&ladder);
    let kind = PowerManagerKind::PCAP;
    let mut t = Table::new(
        "Extension: multi-state ladder engine (§7) — descent policies on the mobile-ATA ladder (PCAP votes)",
        &[
            "app",
            "base",
            "predictive",
            "savings",
            "ski-rental",
            "savings",
            "oracle",
            "savings",
            "ratio pred",
            "ratio ski",
        ],
    );
    let mut dist = Table::new(
        "Extension: ladder bottom-out distribution (predictive descent, PCAP votes)",
        &[
            "app",
            "gaps",
            "spinning idle",
            "active-idle",
            "low-power-idle",
            "standby",
        ],
    );
    let gap_energy = |r: &AppReport| r.energy.total().0 - r.energy.busy.0;
    let n = bench.traces().len() as f64;
    let mut mean_savings = [0.0f64; 3];
    let mut worst_ratio = [0.0f64; 2];
    for (trace_idx, trace) in bench.traces().iter().enumerate() {
        let prepared = bench.prepared(trace_idx);
        let config = bench.config();
        let pred = evaluate_prepared_multistate(prepared, config, kind, &ladder, &PredictiveJump);
        let rental = evaluate_prepared_multistate(prepared, config, kind, &ladder, &ski);
        let oracle = evaluate_prepared_multistate(prepared, config, kind, &ladder, &OracleLadder);
        let base = pred.report.base_energy.total();
        let opt = gap_energy(&oracle.report);
        let ratios = [
            gap_energy(&pred.report) / opt,
            gap_energy(&rental.report) / opt,
        ];
        let savings = [
            pred.report.savings(),
            rental.report.savings(),
            oracle.report.savings(),
        ];
        for (acc, s) in mean_savings.iter_mut().zip(savings) {
            *acc += s / n;
        }
        for (acc, r) in worst_ratio.iter_mut().zip(ratios) {
            *acc = acc.max(r);
        }
        t.row(vec![
            trace.app.to_string(),
            crate::tables::joules(base),
            crate::tables::joules(pred.report.energy.total()),
            pct(savings[0]),
            crate::tables::joules(rental.report.energy.total()),
            pct(savings[1]),
            crate::tables::joules(oracle.report.energy.total()),
            pct(savings[2]),
            format!("{:.3}", ratios[0]),
            format!("{:.3}", ratios[1]),
        ]);
        let s = &pred.ladder_stats;
        dist.row(vec![
            trace.app.to_string(),
            s.total_gaps().to_string(),
            s.idle_gaps.to_string(),
            s.bottom_counts[0].to_string(),
            s.bottom_counts[1].to_string(),
            s.bottom_counts[2].to_string(),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        String::new(),
        String::new(),
        pct(mean_savings[0]),
        String::new(),
        pct(mean_savings[1]),
        String::new(),
        pct(mean_savings[2]),
        format!("worst {:.3}", worst_ratio[0]),
        format!("worst {:.3}", worst_ratio[1]),
    ]);
    vec![t, dist]
}

/// Extension: the learning-augmented λ-ladder
/// ([`pcap_disk::LambdaLadder`]) swept over λ × prediction-error rate
/// on every app, with the per-ladder consistency/robustness envelope
/// from [`pcap_disk::lambda_bounds`] alongside the measured gap-energy
/// ratios, plus a `pcap explain`-style reading guide that also records
/// the λ = 1 ≡ ski-rental bitwise check and the adversarial straddle
/// search.
pub fn lambda(bench: &Workbench) -> Vec<Table> {
    use pcap_disk::{lambda_bounds, LambdaLadder, MultiStateParams, OracleLadder, SkiRental};
    use pcap_sim::evaluate_prepared_multistate;
    use pcap_workload::{adversarial_gaps, worst_case_search, NoisyVotes};

    const LAMBDAS: [f64; 3] = [0.0, 0.5, 1.0];
    const ERROR_RATES: [f64; 4] = [0.0, 0.1, 0.5, 1.0];

    let ladder = MultiStateParams::mobile_ata();
    let ski = SkiRental::new(&ladder);
    let kind = PowerManagerKind::PCAP;
    let gap_energy = |r: &AppReport| r.energy.total().0 - r.energy.busy.0;
    // The robustness bound diverges as λ → 0 (an adversarial vote can
    // park the disk in standby for a microsecond gap), so large bounds
    // render in scientific notation.
    let fmt_bound = |b: f64| {
        if b < 100.0 {
            format!("{b:.3}")
        } else {
            format!("{b:.2e}")
        }
    };

    let mut t = Table::new(
        "Extension: learning-augmented λ-ladder — gap-energy ratio vs clairvoyant under injected vote errors (PCAP votes, mobile-ATA ladder)",
        &[
            "app",
            "lambda",
            "consistency",
            "robustness",
            "e=0",
            "e=0.1",
            "e=0.5",
            "e=1",
            "savings e=0",
        ],
    );
    let mut worst = [[0.0f64; ERROR_RATES.len()]; LAMBDAS.len()];
    let mut bitwise_ski = true;
    for (trace_idx, trace) in bench.traces().iter().enumerate() {
        let prepared = bench.prepared(trace_idx);
        let config = bench.config();
        let oracle = evaluate_prepared_multistate(prepared, config, kind, &ladder, &OracleLadder);
        let opt = gap_energy(&oracle.report);
        let rental = evaluate_prepared_multistate(prepared, config, kind, &ladder, &ski);
        for (li, &lam) in LAMBDAS.iter().enumerate() {
            let policy = LambdaLadder::new(&ladder, lam);
            let bounds = lambda_bounds(&ladder, lam);
            let mut row = vec![
                trace.app.to_string(),
                format!("{lam:.2}"),
                fmt_bound(bounds.consistency),
                fmt_bound(bounds.robustness),
            ];
            let mut savings = String::new();
            for (ei, &rate) in ERROR_RATES.iter().enumerate() {
                let seed = 0x5EED ^ ((trace_idx as u64) << 16) ^ ((li as u64) << 8) ^ ei as u64;
                let noisy = NoisyVotes::new(&policy, rate, seed);
                let out = evaluate_prepared_multistate(prepared, config, kind, &ladder, &noisy);
                let ratio = gap_energy(&out.report) / opt;
                worst[li][ei] = worst[li][ei].max(ratio);
                row.push(format!("{ratio:.3}"));
                if ei == 0 {
                    savings = pct(out.report.savings());
                    if lam == 1.0 {
                        let a = serde_json::to_string(&out.report).expect("report serializes");
                        let b = serde_json::to_string(&rental.report).expect("report serializes");
                        bitwise_ski &= a == b;
                    }
                }
            }
            row.push(savings);
            t.row(row);
        }
    }
    for (li, &lam) in LAMBDAS.iter().enumerate() {
        let bounds = lambda_bounds(&ladder, lam);
        let mut row = vec![
            "WORST".into(),
            format!("{lam:.2}"),
            fmt_bound(bounds.consistency),
            fmt_bound(bounds.robustness),
        ];
        row.extend(worst[li].iter().map(|r| format!("{r:.3}")));
        row.push(String::new());
        t.row(row);
    }

    let mut guide = Table::new("Reading the λ-ladder sweep", &["observation", "value"]);
    guide.row(vec![
        "trust parameter λ".into(),
        "0 trusts the PCAP vote outright; 1 ignores it (prediction-free ski-rental descent)".into(),
    ]);
    guide.row(vec![
        "error rate e".into(),
        "fraction of votes dropped, retargeted or fabricated before the policy plans".into(),
    ]);
    guide.row(vec![
        "λ=1 vs ski-rental at e=0".into(),
        if bitwise_ski {
            "bit-identical reports on every app".into()
        } else {
            "DIVERGED — λ=1 must reproduce ski-rental".into()
        },
    ]);
    let envelope_holds = LAMBDAS.iter().enumerate().all(|(li, &lam)| {
        let bound = lambda_bounds(&ladder, lam).robustness;
        worst[li].iter().all(|&r| r <= bound * (1.0 + 1e-9))
    });
    guide.row(vec![
        "robustness envelope".into(),
        if envelope_holds {
            "holds: every measured ratio is at most its row's robustness bound".into()
        } else {
            "VIOLATED — a measured ratio exceeded its robustness bound".into()
        },
    ]);
    let adversary = worst_case_search(
        &ladder,
        &ski,
        &adversarial_gaps(&ladder, ski.switch_times()),
        false,
    )
    .expect("non-empty adversarial suite");
    guide.row(vec![
        "adversarial straddle search (λ=1)".into(),
        format!(
            "worst per-gap ratio {:.4} at a {:.3} s gap — attains the computed supremum, under the classical 2x bound",
            adversary.ratio,
            adversary.gap.as_secs_f64()
        ),
    ]);
    let grand_worst = worst.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
    guide.row(vec![
        "worst measured ratio (whole sweep)".into(),
        format!("{grand_worst:.3}"),
    ]);
    guide.row(vec![
        "e=0 column".into(),
        "real PCAP votes are imperfect predictions, so even e=0 sits between the consistency and robustness bounds".into(),
    ]);
    vec![t, guide]
}

/// §3.2.1–3.2.2: the relative cost of the three PC capture strategies.
fn ablation_capture(bench: &Workbench) -> Table {
    use pcap_capture::{CallStack, CaptureStrategy, FrameKind};
    use pcap_types::Pc;
    let mut t = Table::new(
        "Ablation: PC-capture strategy overhead (memory accesses per I/O)",
        &[
            "app",
            "library depth",
            "library hook",
            "syscall interception",
            "kernel hook",
        ],
    );
    for (trace, app) in bench.traces().iter().zip(pcap_workload::PaperApp::ALL) {
        let depth = app.spec().io_library_depth;
        let mut stack = CallStack::new();
        stack.push(Pc(0x1000), FrameKind::Application);
        stack.push(Pc(0x1100), FrameKind::Application);
        for i in 0..depth {
            stack.push(Pc(0x7f00_0000 + i), FrameKind::Library);
        }
        stack.push(Pc(0xc000_0000), FrameKind::Kernel);
        let cost = |s: CaptureStrategy| s.capture(&stack).expect("app frame").cost.memory_accesses;
        t.row(vec![
            trace.app.to_string(),
            depth.to_string(),
            cost(CaptureStrategy::LibraryHook).to_string(),
            cost(CaptureStrategy::SyscallInterception).to_string(),
            cost(CaptureStrategy::KernelHook).to_string(),
        ]);
    }
    t
}
