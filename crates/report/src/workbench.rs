//! The workbench: generated traces plus a memoized report cache, shared
//! by all experiments.
//!
//! Since the prepare-once pipeline, the workbench also owns one lazily
//! built [`PreparedTrace`] per application: every `(app, manager)`
//! cell — warmed in parallel or computed on demand — simulates against
//! that shared preparation, so the manager grid pays for cache
//! filtering and gap extraction once per app instead of once per cell.

use pcap_core::PcapVariant;
use pcap_obs::{NullPipeline, PipelineObserver};
use pcap_sim::{
    evaluate_app, evaluate_prepared, evaluate_prepared_traced, AppReport, PowerManagerKind,
    PreparedTrace, SimConfig, SweepRunner,
};
use pcap_trace::{ApplicationTrace, TraceError};
use pcap_workload::{AppModel, PaperApp};
use std::collections::{HashMap, HashSet};
use std::sync::{Condvar, Mutex, OnceLock};

/// Every `(app, manager)` cell the experiment suite reads through the
/// memo, in canonical order. Warming this grid up front (in parallel)
/// makes `pcap all`/`pcap verify` embarrassingly parallel while their
/// rendered output stays byte-identical to a serial run.
pub const GRID_KINDS: [PowerManagerKind; 10] = [
    PowerManagerKind::Timeout,
    PowerManagerKind::Oracle,
    PowerManagerKind::LT,
    PowerManagerKind::LearningTree { reuse: false },
    PowerManagerKind::PCAP,
    PowerManagerKind::Pcap {
        variant: PcapVariant::Base,
        reuse: false,
    },
    PowerManagerKind::Pcap {
        variant: PcapVariant::History,
        reuse: true,
    },
    PowerManagerKind::Pcap {
        variant: PcapVariant::FileDescriptor,
        reuse: true,
    },
    PowerManagerKind::Pcap {
        variant: PcapVariant::FileDescriptorHistory,
        reuse: true,
    },
    PowerManagerKind::MultiStatePcap,
];

/// One report-memo cell.
type Cell = (usize, PowerManagerKind);

/// The memo's guarded state: finished reports plus the cells some
/// caller has claimed and is currently simulating. Claiming under the
/// lock is what stops two concurrent `warm_up`/`report` callers from
/// simulating the same cell twice.
#[derive(Debug, Default)]
struct MemoState {
    done: HashMap<Cell, AppReport>,
    in_flight: HashSet<Cell>,
}

/// Generated traces for the six-application suite plus a memo of
/// simulator reports, so experiments that share configurations (Figures
/// 6–8 all need TP/LT/PCAP) do not re-simulate.
#[derive(Debug)]
pub struct Workbench {
    config: SimConfig,
    seed: u64,
    traces: Vec<ApplicationTrace>,
    prepared: Vec<OnceLock<PreparedTrace>>,
    memo: Mutex<MemoState>,
    memo_ready: Condvar,
}

impl Workbench {
    /// Generates the full paper suite under `seed`.
    ///
    /// # Errors
    ///
    /// Propagates trace-validation failures from the generator (a
    /// workload-spec bug).
    pub fn generate(seed: u64, config: SimConfig) -> Result<Workbench, TraceError> {
        Workbench::generate_par(seed, config, 1)
    }

    /// Like [`Workbench::generate`], but generates the six application
    /// traces on `jobs` worker threads. Each trace is a pure function
    /// of `(app, seed)` and the results are merged in [`PaperApp::ALL`]
    /// order, so the workbench is identical for every job count.
    ///
    /// # Errors
    ///
    /// Propagates trace-validation failures from the generator (a
    /// workload-spec bug).
    pub fn generate_par(
        seed: u64,
        config: SimConfig,
        jobs: usize,
    ) -> Result<Workbench, TraceError> {
        Workbench::generate_par_observed(seed, config, jobs, &NullPipeline)
    }

    /// [`generate_par`](Self::generate_par) with a [`PipelineObserver`]
    /// attached: each trace generation runs inside a `generate:{app}`
    /// span on a `"generate"` runner scope.
    ///
    /// # Errors
    ///
    /// Propagates trace-validation failures from the generator (a
    /// workload-spec bug).
    pub fn generate_par_observed<P: PipelineObserver>(
        seed: u64,
        config: SimConfig,
        jobs: usize,
        pipeline: &P,
    ) -> Result<Workbench, TraceError> {
        let apps = PaperApp::ALL;
        let traces = SweepRunner::new(jobs)
            .run_observed(
                "generate",
                &apps,
                |_, app| app.spec().generate_trace(seed),
                |_, app| format!("generate:{}", app.name()),
                pipeline,
            )
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Workbench::from_traces_seeded(seed, traces, config))
    }

    /// Builds a workbench from pre-generated traces (tests, custom
    /// suites).
    pub fn from_traces(traces: Vec<ApplicationTrace>, config: SimConfig) -> Workbench {
        Workbench::from_traces_seeded(0, traces, config)
    }

    /// Builds a workbench from pre-generated traces, recording the seed
    /// they were generated with.
    pub fn from_traces_seeded(
        seed: u64,
        traces: Vec<ApplicationTrace>,
        config: SimConfig,
    ) -> Workbench {
        let prepared = traces.iter().map(|_| OnceLock::new()).collect();
        Workbench {
            config,
            seed,
            traces,
            prepared,
            memo: Mutex::new(MemoState::default()),
            memo_ready: Condvar::new(),
        }
    }

    /// The shared [`PreparedTrace`] of application `trace_idx`, built
    /// on first use. All manager-grid cells of the application borrow
    /// this one preparation.
    pub fn prepared(&self, trace_idx: usize) -> &PreparedTrace {
        self.prepared[trace_idx]
            .get_or_init(|| PreparedTrace::build(&self.traces[trace_idx], &self.config))
    }

    /// [`prepared`](Self::prepared) with a [`PipelineObserver`]
    /// attached: a first-use build runs inside a `build:{app}` span
    /// and feeds the `prepare_us` histogram and `prepared_runs`
    /// counter (an already-built preparation emits nothing).
    pub fn prepared_observed<P: PipelineObserver>(
        &self,
        trace_idx: usize,
        pipeline: &P,
    ) -> &PreparedTrace {
        self.prepared[trace_idx].get_or_init(|| {
            PreparedTrace::build_traced(&self.traces[trace_idx], &self.config, pipeline)
        })
    }

    /// Builds every application's [`PreparedTrace`] up front, fanning
    /// the builds out on `jobs` worker threads (the timed "prepare"
    /// phase of `pcap bench`). Idempotent.
    pub fn prepare_all(&self, jobs: usize) {
        self.prepare_all_observed(jobs, &NullPipeline);
    }

    /// [`prepare_all`](Self::prepare_all) with a [`PipelineObserver`]
    /// attached: the fan-out runs on a `"prepare"` runner scope with
    /// one `prepare:{app}` task span per application, each wrapping the
    /// engine-level `build:{app}` span of the actual stream build.
    pub fn prepare_all_observed<P: PipelineObserver>(&self, jobs: usize, pipeline: &P) {
        let indices: Vec<usize> = (0..self.traces.len()).collect();
        SweepRunner::new(jobs).run_observed(
            "prepare",
            &indices,
            |_, &i| {
                self.prepared_observed(i, pipeline);
            },
            |_, &i| format!("prepare:{}", self.traces[i].app),
            pipeline,
        );
    }

    /// Simulates every `(trace, kind)` cell not already memoized, on
    /// `jobs` worker threads, and fills the memo.
    ///
    /// The per-cell simulation is a pure function of
    /// `(trace, config, kind)`, so a warmed workbench returns exactly
    /// the reports a cold one would — parallel warm-up changes wall
    /// clock, never output.
    ///
    /// Cells are *claimed* under the memo lock before simulating:
    /// concurrent `warm_up` (or [`report`](Self::report)) callers
    /// partition the pending cells instead of racing to simulate the
    /// same cell twice, and this call returns only once every
    /// requested cell is done (waiting on cells another caller
    /// claimed).
    pub fn warm_up(&self, kinds: &[PowerManagerKind], jobs: usize) {
        self.warm_up_observed(kinds, jobs, &NullPipeline);
    }

    /// [`warm_up`](Self::warm_up) with a [`PipelineObserver`] attached:
    /// claimed cells evaluate on a `"warm_up"` runner scope — one
    /// `cell:{app}×{manager}` span per cell, with the engine's nested
    /// `eval:{app}×{manager}` span inside it — and per-worker
    /// [`pcap_obs::WorkerStats`] report how evenly the grid sharded.
    pub fn warm_up_observed<P: PipelineObserver>(
        &self,
        kinds: &[PowerManagerKind],
        jobs: usize,
        pipeline: &P,
    ) {
        let requested: Vec<Cell> = (0..self.traces.len())
            .flat_map(|trace_idx| kinds.iter().map(move |&kind| (trace_idx, kind)))
            .collect();
        let claimed: Vec<Cell> = {
            let mut memo = self.memo.lock().expect("memo lock");
            requested
                .iter()
                .filter(|cell| !memo.done.contains_key(cell) && memo.in_flight.insert(**cell))
                .copied()
                .collect()
        };
        if !claimed.is_empty() {
            // Share one preparation per app across the claimed cells.
            self.prepare_all_observed(jobs, pipeline);
            let reports = SweepRunner::new(jobs).run_observed(
                "warm_up",
                &claimed,
                |_, &(trace_idx, kind)| {
                    evaluate_prepared_traced(self.prepared(trace_idx), &self.config, kind, pipeline)
                },
                |_, &(trace_idx, kind)| {
                    format!("cell:{}×{}", self.traces[trace_idx].app, kind.label())
                },
                pipeline,
            );
            let mut memo = self.memo.lock().expect("memo lock");
            for (cell, report) in claimed.into_iter().zip(reports) {
                memo.in_flight.remove(&cell);
                memo.done.insert(cell, report);
            }
            self.memo_ready.notify_all();
        }
        // Wait for any requested cells claimed by concurrent callers.
        let mut memo = self.memo.lock().expect("memo lock");
        while !requested.iter().all(|cell| memo.done.contains_key(cell)) {
            memo = self.memo_ready.wait(memo).expect("memo lock");
        }
    }

    /// Inserts a pre-computed report into the memo (used by the
    /// multi-seed sweep, which batches simulation across workbenches).
    pub fn prime(&self, trace_idx: usize, kind: PowerManagerKind, report: AppReport) {
        self.prime_observed(trace_idx, kind, report, &NullPipeline);
    }

    /// [`prime`](Self::prime) with a [`PipelineObserver`] attached:
    /// counts the insertion on the `memo_prime` counter.
    pub fn prime_observed<P: PipelineObserver>(
        &self,
        trace_idx: usize,
        kind: PowerManagerKind,
        report: AppReport,
        pipeline: &P,
    ) {
        if P::ENABLED {
            pipeline.counter_add("memo_prime", 1);
        }
        let mut memo = self.memo.lock().expect("memo lock");
        memo.in_flight.remove(&(trace_idx, kind));
        memo.done.insert((trace_idx, kind), report);
        self.memo_ready.notify_all();
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The seed the suite was generated with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generated traces, in [`PaperApp::ALL`] order.
    pub fn traces(&self) -> &[ApplicationTrace] {
        &self.traces
    }

    /// The simulator report for one application × one manager,
    /// memoized. If another caller is already simulating the cell,
    /// waits for its result instead of duplicating the work.
    pub fn report(&self, trace_idx: usize, kind: PowerManagerKind) -> AppReport {
        let cell = (trace_idx, kind);
        {
            let mut memo = self.memo.lock().expect("memo lock");
            loop {
                if let Some(r) = memo.done.get(&cell) {
                    return r.clone();
                }
                if memo.in_flight.insert(cell) {
                    break; // claimed: this caller simulates it
                }
                memo = self.memo_ready.wait(memo).expect("memo lock");
            }
        }
        let report = evaluate_prepared(self.prepared(trace_idx), &self.config, kind);
        self.prime(trace_idx, kind, report.clone());
        report
    }

    /// Evaluates application `trace_idx` under a *modified*
    /// configuration (the ablation sweeps), sharing this workbench's
    /// prepared streams whenever `config` keeps the stream-relevant
    /// cache/disk parameters and rebuilding them only when it does
    /// not. Not memoized — ablation configs are transient.
    pub fn evaluate_with(
        &self,
        trace_idx: usize,
        config: &SimConfig,
        kind: PowerManagerKind,
    ) -> AppReport {
        let prepared = self.prepared(trace_idx);
        if prepared.matches(config) {
            evaluate_prepared(prepared, config, kind)
        } else {
            evaluate_app(&self.traces[trace_idx], config, kind)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_trace::TraceRunBuilder;
    use pcap_types::{Fd, FileId, IoKind, Pc, Pid, SimTime};

    fn tiny_trace() -> ApplicationTrace {
        let mut trace = ApplicationTrace::new("tiny");
        let mut b = TraceRunBuilder::new(Pid(1));
        b.io(
            SimTime::from_secs(1),
            Pid(1),
            Pc(0x1),
            IoKind::Read,
            Fd(3),
            FileId(1),
            0,
            4096,
        );
        b.exit(SimTime::from_secs(30), Pid(1));
        trace.runs.push(b.finish().unwrap());
        trace
    }

    #[test]
    fn warm_up_fills_memo_identically_for_any_job_count() {
        let serial = Workbench::from_traces(vec![tiny_trace()], SimConfig::paper());
        let parallel = Workbench::from_traces(vec![tiny_trace()], SimConfig::paper());
        serial.warm_up(&GRID_KINDS, 1);
        parallel.warm_up(&GRID_KINDS, 8);
        assert_eq!(serial.memo.lock().unwrap().done.len(), GRID_KINDS.len());
        for kind in GRID_KINDS {
            assert_eq!(
                serial.report(0, kind),
                parallel.report(0, kind),
                "{}",
                kind.label()
            );
        }
        // A second warm-up has nothing left to simulate.
        serial.warm_up(&GRID_KINDS, 4);
        assert_eq!(serial.memo.lock().unwrap().done.len(), GRID_KINDS.len());
    }

    #[test]
    fn concurrent_warm_up_simulates_each_cell_once() {
        // Many threads warm the same grid; the prepare counter bounds
        // the preparation work (one per run), and the memo ends exactly
        // full — claimed cells are never simulated twice into the memo.
        let bench = Workbench::from_traces(vec![tiny_trace(), tiny_trace()], SimConfig::paper());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| bench.warm_up(&GRID_KINDS, 2));
            }
        });
        let memo = bench.memo.lock().unwrap();
        assert_eq!(memo.done.len(), 2 * GRID_KINDS.len());
        assert!(memo.in_flight.is_empty());
    }

    #[test]
    fn generate_par_matches_serial_generation() {
        let serial = Workbench::generate(7, SimConfig::paper()).expect("valid");
        let parallel = Workbench::generate_par(7, SimConfig::paper(), 6).expect("valid");
        assert_eq!(serial.traces(), parallel.traces());
        assert_eq!(parallel.seed(), 7);
    }

    #[test]
    fn memoizes_reports() {
        let bench = Workbench::from_traces(vec![tiny_trace()], SimConfig::paper());
        let a = bench.report(0, PowerManagerKind::Timeout);
        let b = bench.report(0, PowerManagerKind::Timeout);
        assert_eq!(a, b);
        assert_eq!(bench.memo.lock().unwrap().done.len(), 1);
        assert_eq!(bench.traces().len(), 1);
        assert_eq!(bench.seed(), 0);
    }

    #[test]
    fn evaluate_with_shares_or_rebuilds_streams() {
        let bench = Workbench::from_traces(vec![tiny_trace()], SimConfig::paper());
        let baseline = bench.evaluate_with(0, bench.config(), PowerManagerKind::Timeout);
        // Predictor-only change: shares the prepared streams.
        let mut longer = bench.config().clone();
        longer.timeout = longer.timeout * 4;
        let ablated = bench.evaluate_with(0, &longer, PowerManagerKind::Timeout);
        assert_eq!(baseline.global.opportunities, ablated.global.opportunities);
        // Stream-relevant change: must rebuild, not panic.
        let mut bigger_cache = bench.config().clone();
        bigger_cache.cache.capacity_bytes *= 4;
        let rebuilt = bench.evaluate_with(0, &bigger_cache, PowerManagerKind::Timeout);
        assert_eq!(&*rebuilt.app, "tiny");
    }
}
