//! The workbench: generated traces plus a memoized report cache, shared
//! by all experiments.

use pcap_core::PcapVariant;
use pcap_sim::{evaluate_app, AppReport, PowerManagerKind, SimConfig, SweepRunner};
use pcap_trace::{ApplicationTrace, TraceError};
use pcap_workload::{AppModel, PaperApp};
use std::collections::HashMap;
use std::sync::Mutex;

/// Every `(app, manager)` cell the experiment suite reads through the
/// memo, in canonical order. Warming this grid up front (in parallel)
/// makes `pcap all`/`pcap verify` embarrassingly parallel while their
/// rendered output stays byte-identical to a serial run.
pub const GRID_KINDS: [PowerManagerKind; 10] = [
    PowerManagerKind::Timeout,
    PowerManagerKind::Oracle,
    PowerManagerKind::LT,
    PowerManagerKind::LearningTree { reuse: false },
    PowerManagerKind::PCAP,
    PowerManagerKind::Pcap {
        variant: PcapVariant::Base,
        reuse: false,
    },
    PowerManagerKind::Pcap {
        variant: PcapVariant::History,
        reuse: true,
    },
    PowerManagerKind::Pcap {
        variant: PcapVariant::FileDescriptor,
        reuse: true,
    },
    PowerManagerKind::Pcap {
        variant: PcapVariant::FileDescriptorHistory,
        reuse: true,
    },
    PowerManagerKind::MultiStatePcap,
];

/// Generated traces for the six-application suite plus a memo of
/// simulator reports, so experiments that share configurations (Figures
/// 6–8 all need TP/LT/PCAP) do not re-simulate.
#[derive(Debug)]
pub struct Workbench {
    config: SimConfig,
    seed: u64,
    traces: Vec<ApplicationTrace>,
    memo: Mutex<HashMap<(usize, PowerManagerKind), AppReport>>,
}

impl Workbench {
    /// Generates the full paper suite under `seed`.
    ///
    /// # Errors
    ///
    /// Propagates trace-validation failures from the generator (a
    /// workload-spec bug).
    pub fn generate(seed: u64, config: SimConfig) -> Result<Workbench, TraceError> {
        Workbench::generate_par(seed, config, 1)
    }

    /// Like [`Workbench::generate`], but generates the six application
    /// traces on `jobs` worker threads. Each trace is a pure function
    /// of `(app, seed)` and the results are merged in [`PaperApp::ALL`]
    /// order, so the workbench is identical for every job count.
    ///
    /// # Errors
    ///
    /// Propagates trace-validation failures from the generator (a
    /// workload-spec bug).
    pub fn generate_par(
        seed: u64,
        config: SimConfig,
        jobs: usize,
    ) -> Result<Workbench, TraceError> {
        let apps = PaperApp::ALL;
        let traces = SweepRunner::new(jobs)
            .run(&apps, |_, app| app.spec().generate_trace(seed))
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Workbench::from_traces_seeded(seed, traces, config))
    }

    /// Builds a workbench from pre-generated traces (tests, custom
    /// suites).
    pub fn from_traces(traces: Vec<ApplicationTrace>, config: SimConfig) -> Workbench {
        Workbench::from_traces_seeded(0, traces, config)
    }

    /// Builds a workbench from pre-generated traces, recording the seed
    /// they were generated with.
    pub fn from_traces_seeded(
        seed: u64,
        traces: Vec<ApplicationTrace>,
        config: SimConfig,
    ) -> Workbench {
        Workbench {
            config,
            seed,
            traces,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// Simulates every `(trace, kind)` cell not already memoized, on
    /// `jobs` worker threads, and fills the memo.
    ///
    /// The per-cell simulation is a pure function of
    /// `(trace, config, kind)`, so a warmed workbench returns exactly
    /// the reports a cold one would — parallel warm-up changes wall
    /// clock, never output.
    pub fn warm_up(&self, kinds: &[PowerManagerKind], jobs: usize) {
        let pending: Vec<(usize, PowerManagerKind)> = {
            let memo = self.memo.lock().expect("memo lock");
            (0..self.traces.len())
                .flat_map(|trace_idx| kinds.iter().map(move |&kind| (trace_idx, kind)))
                .filter(|cell| !memo.contains_key(cell))
                .collect()
        };
        let reports = SweepRunner::new(jobs).run(&pending, |_, &(trace_idx, kind)| {
            evaluate_app(&self.traces[trace_idx], &self.config, kind)
        });
        let mut memo = self.memo.lock().expect("memo lock");
        for (cell, report) in pending.into_iter().zip(reports) {
            memo.insert(cell, report);
        }
    }

    /// Inserts a pre-computed report into the memo (used by the
    /// multi-seed sweep, which batches simulation across workbenches).
    pub fn prime(&self, trace_idx: usize, kind: PowerManagerKind, report: AppReport) {
        self.memo
            .lock()
            .expect("memo lock")
            .insert((trace_idx, kind), report);
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The seed the suite was generated with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generated traces, in [`PaperApp::ALL`] order.
    pub fn traces(&self) -> &[ApplicationTrace] {
        &self.traces
    }

    /// The simulator report for one application × one manager,
    /// memoized.
    pub fn report(&self, trace_idx: usize, kind: PowerManagerKind) -> AppReport {
        if let Some(r) = self.memo.lock().expect("memo lock").get(&(trace_idx, kind)) {
            return r.clone();
        }
        let report = evaluate_app(&self.traces[trace_idx], &self.config, kind);
        self.memo
            .lock()
            .expect("memo lock")
            .insert((trace_idx, kind), report.clone());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_trace::TraceRunBuilder;
    use pcap_types::{Fd, FileId, IoKind, Pc, Pid, SimTime};

    fn tiny_trace() -> ApplicationTrace {
        let mut trace = ApplicationTrace::new("tiny");
        let mut b = TraceRunBuilder::new(Pid(1));
        b.io(
            SimTime::from_secs(1),
            Pid(1),
            Pc(0x1),
            IoKind::Read,
            Fd(3),
            FileId(1),
            0,
            4096,
        );
        b.exit(SimTime::from_secs(30), Pid(1));
        trace.runs.push(b.finish().unwrap());
        trace
    }

    #[test]
    fn warm_up_fills_memo_identically_for_any_job_count() {
        let serial = Workbench::from_traces(vec![tiny_trace()], SimConfig::paper());
        let parallel = Workbench::from_traces(vec![tiny_trace()], SimConfig::paper());
        serial.warm_up(&GRID_KINDS, 1);
        parallel.warm_up(&GRID_KINDS, 8);
        assert_eq!(serial.memo.lock().unwrap().len(), GRID_KINDS.len());
        for kind in GRID_KINDS {
            assert_eq!(
                serial.report(0, kind),
                parallel.report(0, kind),
                "{}",
                kind.label()
            );
        }
        // A second warm-up has nothing left to simulate.
        serial.warm_up(&GRID_KINDS, 4);
        assert_eq!(serial.memo.lock().unwrap().len(), GRID_KINDS.len());
    }

    #[test]
    fn generate_par_matches_serial_generation() {
        let serial = Workbench::generate(7, SimConfig::paper()).expect("valid");
        let parallel = Workbench::generate_par(7, SimConfig::paper(), 6).expect("valid");
        assert_eq!(serial.traces(), parallel.traces());
        assert_eq!(parallel.seed(), 7);
    }

    #[test]
    fn memoizes_reports() {
        let bench = Workbench::from_traces(vec![tiny_trace()], SimConfig::paper());
        let a = bench.report(0, PowerManagerKind::Timeout);
        let b = bench.report(0, PowerManagerKind::Timeout);
        assert_eq!(a, b);
        assert_eq!(bench.memo.lock().unwrap().len(), 1);
        assert_eq!(bench.traces().len(), 1);
        assert_eq!(bench.seed(), 0);
    }
}
