//! The workbench: generated traces plus a memoized report cache, shared
//! by all experiments.

use pcap_sim::{evaluate_app, AppReport, PowerManagerKind, SimConfig};
use pcap_trace::{ApplicationTrace, TraceError};
use pcap_workload::{AppModel, PaperApp};
use std::collections::HashMap;
use std::sync::Mutex;

/// Generated traces for the six-application suite plus a memo of
/// simulator reports, so experiments that share configurations (Figures
/// 6–8 all need TP/LT/PCAP) do not re-simulate.
#[derive(Debug)]
pub struct Workbench {
    config: SimConfig,
    seed: u64,
    traces: Vec<ApplicationTrace>,
    memo: Mutex<HashMap<(usize, PowerManagerKind), AppReport>>,
}

impl Workbench {
    /// Generates the full paper suite under `seed`.
    ///
    /// # Errors
    ///
    /// Propagates trace-validation failures from the generator (a
    /// workload-spec bug).
    pub fn generate(seed: u64, config: SimConfig) -> Result<Workbench, TraceError> {
        let traces = PaperApp::ALL
            .iter()
            .map(|app| app.spec().generate_trace(seed))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Workbench {
            config,
            seed,
            traces,
            memo: Mutex::new(HashMap::new()),
        })
    }

    /// Builds a workbench from pre-generated traces (tests, custom
    /// suites).
    pub fn from_traces(traces: Vec<ApplicationTrace>, config: SimConfig) -> Workbench {
        Workbench {
            config,
            seed: 0,
            traces,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The seed the suite was generated with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generated traces, in [`PaperApp::ALL`] order.
    pub fn traces(&self) -> &[ApplicationTrace] {
        &self.traces
    }

    /// The simulator report for one application × one manager,
    /// memoized.
    pub fn report(&self, trace_idx: usize, kind: PowerManagerKind) -> AppReport {
        if let Some(r) = self.memo.lock().expect("memo lock").get(&(trace_idx, kind)) {
            return r.clone();
        }
        let report = evaluate_app(&self.traces[trace_idx], &self.config, kind);
        self.memo
            .lock()
            .expect("memo lock")
            .insert((trace_idx, kind), report.clone());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_trace::TraceRunBuilder;
    use pcap_types::{Fd, FileId, IoKind, Pc, Pid, SimTime};

    fn tiny_trace() -> ApplicationTrace {
        let mut trace = ApplicationTrace::new("tiny");
        let mut b = TraceRunBuilder::new(Pid(1));
        b.io(
            SimTime::from_secs(1),
            Pid(1),
            Pc(0x1),
            IoKind::Read,
            Fd(3),
            FileId(1),
            0,
            4096,
        );
        b.exit(SimTime::from_secs(30), Pid(1));
        trace.runs.push(b.finish().unwrap());
        trace
    }

    #[test]
    fn memoizes_reports() {
        let bench = Workbench::from_traces(vec![tiny_trace()], SimConfig::paper());
        let a = bench.report(0, PowerManagerKind::Timeout);
        let b = bench.report(0, PowerManagerKind::Timeout);
        assert_eq!(a, b);
        assert_eq!(bench.memo.lock().unwrap().len(), 1);
        assert_eq!(bench.traces().len(), 1);
        assert_eq!(bench.seed(), 0);
    }
}
