//! Umbrella crate for the PCAP dynamic-power-management reproduction.
//!
//! Re-exports every workspace crate under a short alias so examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use pcap_dpm::prelude::*;
//! let params = DiskParams::fujitsu_mhf2043at();
//! assert!(params.breakeven_time().as_secs_f64() > 5.0);
//! ```

pub use pcap_baselines as baselines;
pub use pcap_cache as cache;
pub use pcap_capture as capture;
pub use pcap_core as core;
pub use pcap_disk as disk;
pub use pcap_obs as obs;
pub use pcap_report as report;
pub use pcap_serve as serve;
pub use pcap_sim as sim;
pub use pcap_trace as trace;
pub use pcap_types as types;
pub use pcap_workload as workload;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use pcap_baselines::{LearningTree, Oracle, TimeoutPredictor};
    pub use pcap_core::{GlobalPredictor, IdlePredictor, Pcap, PcapConfig, PcapVariant};
    pub use pcap_disk::{DiskParams, DiskSim};
    pub use pcap_report::{Experiment, Workbench};
    pub use pcap_sim::{evaluate_app, AppReport, PowerManagerKind, SimConfig, WorkloadProfile};
    pub use pcap_trace::{ApplicationTrace, TraceStats};
    pub use pcap_types::{Fd, FileId, IoKind, Pc, Pid, Signature, SimDuration, SimTime};
    pub use pcap_workload::{paper_suite, AppModel, PaperApp};
}
